// FlatStore — the key-value storage engine (the paper's contribution).
//
// Composition (paper Fig. 2): per-core compacted OpLogs over an emulated
// PM pool, the lazy-persist allocator for out-of-log values, pipelined
// horizontal batching for the g-persist phase, a volatile index (per-core
// CCEH for FlatStore-H, a global Masstree for FlatStore-M, or a volatile
// FAST&FAIR for the FlatStore-FF ablation), per-core conflict queues, log
// cleaning, and crash/clean-shutdown recovery.
//
// Two API levels:
//
//  * Synchronous convenience (Put/Get/Delete/Scan): runs the asynchronous
//    protocol inline on the calling thread. Used by examples, tests, and
//    single-threaded tools.
//
//  * Asynchronous per-core protocol, used by the server runtime
//    (core/server.h) to reproduce the paper's pipelined processing:
//
//      BeginPut/BeginDelete  -> l-persist + stage in the request pool
//      Pump                  -> one g-persist attempt (leader election)
//      Drain                 -> completed ops: volatile-index update,
//                               old-entry retirement, conflict release
//      GetOnCore             -> immediate read through the volatile index
//
//    Keys are partitioned across cores by key hash (CoreForKey). The
//    per-core conflict queue (paper §3.3 Discussion) prevents pipelined-HB
//    *reordering*: same-key writes pipeline freely (FIFO drains keep them
//    ordered; versions chain through the in-flight table), but a Get on a
//    key with in-flight writes must wait (KeyBusy) so it cannot miss a
//    preceding Put.

#ifndef FLATSTORE_CORE_FLATSTORE_H_
#define FLATSTORE_CORE_FLATSTORE_H_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "batch/hb_engine.h"
#include "common/epoch.h"
#include "common/logging.h"
#include "common/open_table.h"
#include "common/spin_lock.h"
#include "index/kv_index.h"
#include "log/layout.h"
#include "log/log_cleaner.h"
#include "log/oplog.h"
#include "tier/tier.h"

namespace flatstore {
namespace core {

// Which volatile index backs the store (paper §4.1/§4.2/§5.1).
enum class IndexKind {
  kHash,              // FlatStore-H: one CCEH partition per core
  kMasstree,          // FlatStore-M: global ordered index
  kFastFairVolatile,  // FlatStore-FF: global volatile FAST&FAIR
};

const char* IndexKindName(IndexKind kind);

// Engine configuration.
struct FlatStoreOptions {
  int num_cores = 4;
  // Horizontal-batching group size (the paper groups cores by socket).
  int group_size = 4;
  batch::BatchMode batch_mode = batch::BatchMode::kPipelinedHB;
  IndexKind index = IndexKind::kHash;
  // log2 of each per-core CCEH partition's initial segment count.
  uint32_t hash_initial_depth = 6;
  // Pad log batches to cachelines (§3.2); ablation toggle.
  bool pad_batches = true;
  // Log cleaning (§3.4). See log::LogCleaner::Options for semantics.
  log::VictimQuery::Policy gc_policy = log::VictimQuery::Policy::kCostBenefit;
  double gc_live_ratio = 0.6;
  uint64_t gc_free_chunk_watermark = 0;  // 0 = clean whenever possible
  uint64_t gc_quantum_bytes = 0;         // 0 = unbounded passes
  size_t gc_max_victims = 4;             // in-flight cleaning jobs per core
  bool gc_segregate = true;              // hot/cold survivor lanes
  uint64_t gc_cold_age = 512;            // write-clock ticks
  // Arms allocator backpressure: at this many free chunks the cleaner's
  // quantum budget is boosted; at a quarter of it, unbounded. 0 = off.
  uint64_t gc_backpressure_watermark = 0;
  // NUMA placement (multi-socket pools only; single-socket stores are
  // unaffected either way). On: each core's log segments and value blocks
  // come from its own socket's chunk pool (the allocator's default), HB
  // groups never straddle a socket boundary (a leader always persists to
  // DIMMs on its own socket), and the volatile indexes are homed
  // per-socket — per-core CCEH partitions carry their core's socket, the
  // tree indexes become a NUMA-braided per-socket forest. Off: PM chunks
  // are dealt round-robin across sockets (interleaved first-touch — about
  // half of every core's persists cross the link), indexes are built
  // socket-interleaved (every node miss pays half the remote surcharge),
  // and group alignment is not enforced — the placement-off arm of the
  // scaling A/B.
  bool socket_local_placement = true;
  // Ordered persistent tier (DESIGN.md §11). Opt-in: when on, the
  // tiering pass (RunTieringOnce / the cleaner-driven background flow)
  // converts sealed cold log chunks into the braided persistent skiplist,
  // bounding recovery to the un-tiered log suffix and giving FlatStore-H
  // an ordered scan path. A store whose pool already holds a tier always
  // loads and honours it on Open regardless of this flag (stale tier
  // nodes must keep duelling or recovery would lose updates).
  bool tier_enabled = false;
  // Minimum write-clock age before a sealed chunk may tier (0 = any).
  uint64_t tier_age = 0;
  // Chunks with a live-entry ratio below this are better freed by the
  // cleaner than leaked into the tier (tiered chunks are never freed).
  double tier_min_live_ratio = 0.25;
  // Per-core conversion cap per RunTieringOnce pass.
  size_t tier_max_chunks = 4;
};

// Result of Begin* calls.
enum class OpStatus {
  kOk,            // staged
  kBusy,          // same-key op in flight (conflict queue) — retry later
  kBackpressure,  // request pool full — Pump + Drain, then retry
  kNotFound,      // delete of an absent key (completed immediately)
  kNoSpace,       // PM exhausted
};

// Per-key outcome of a MultiGet batch.
enum class GetResult : uint8_t {
  kFound,     // value filled
  kAbsent,    // no live version (missing key or tombstone)
  kDeferred,  // write in flight on this key — retry after the next drain
};

struct ReadResult {
  GetResult status = GetResult::kAbsent;
  std::string value;
};

// Upper bound on one MultiGet batch, fixed so all per-batch state (hints,
// packed values, read completions) lives on the stack.
inline constexpr size_t kMaxReadBatch = 64;

// Upper bound on one MultiPut batch. Must fit in one fused HB group
// (batch::HbEngine::kMaxBatch) so the whole client batch persists through
// a single OpLog::AppendBatch; sized below it so a leader batch can still
// merge a fused group with neighbouring singles.
inline constexpr size_t kMaxWriteBatch = 32;

// One write of a MultiPut batch: an upsert of `len` value bytes, or —
// when `tombstone` is set — a delete (`value`/`len` ignored).
struct WriteOp {
  uint64_t key = 0;
  const void* value = nullptr;
  uint32_t len = 0;
  bool tombstone = false;
};

// ---- transactions (§5.3) ----

// Upper bound on ops per transaction. The whole chain plus its commit
// record must fit in one fused HB group so the txn persists through one
// log reservation, one persist sweep, and two fences.
inline constexpr size_t kMaxTxnOps = 24;

enum class TxnOpKind : uint8_t {
  kPut,     // unconditional upsert
  kDelete,  // tombstone (skipped if the key is absent)
  kCas,     // compare-and-swap: commit iff current value == expected
  kRmw,     // read-modify-write through a callback
};

// Read-modify-write callback: `cur` is the key's current value (nullptr
// if absent), `out` has `cap` = log::kMaxInlineValue bytes of room; the
// function writes the new value and returns its length (1..cap).
using TxnRmwFn = uint32_t (*)(void* ctx, const void* cur, uint32_t cur_len,
                              uint8_t* out, uint32_t cap);

// One transaction operation. For kCas, `expected == nullptr` means
// "expect the key absent"; otherwise `expected/expected_len` is compared
// byte-wise against the current value.
struct TxnOp {
  TxnOpKind kind = TxnOpKind::kPut;
  uint64_t key = 0;
  const void* value = nullptr;  // kPut / kCas: the new value
  uint32_t len = 0;
  const void* expected = nullptr;  // kCas only
  uint32_t expected_len = 0;
  TxnRmwFn rmw = nullptr;  // kRmw only
  void* rmw_ctx = nullptr;
};

// Outcome of a transaction commit attempt.
enum class TxnStatus : uint8_t {
  kCommitted,     // staged atomically (or trivially empty)
  kCasMismatch,   // a kCas op failed its compare — nothing staged
  kBusy,          // a txn key has in-flight writes — pump/drain, retry
  kBackpressure,  // request pool lacked room for the group — retry
  kNoSpace,       // PM exhausted — nothing staged
};

const char* TxnStatusName(TxnStatus status);

// The engine.
class FlatStore {
 public:
  using OpHandle = uint64_t;

  // A finished asynchronous op.
  struct Completion {
    OpHandle handle;
    uint64_t key;
    uint64_t done_time;  // simulated completion timestamp
  };

  // Creates a fresh store: formats the pool's root area and allocator
  // region. The pool must be at least a few chunks big.
  static std::unique_ptr<FlatStore> Create(pm::PmPool* pool,
                                           const FlatStoreOptions& options);

  // Opens an existing pool: after a clean shutdown, loads the index
  // checkpoint; after a crash, replays the OpLogs (paper §3.5). The
  // options must use the same num_cores the pool was created with.
  static std::unique_ptr<FlatStore> Open(pm::PmPool* pool,
                                         const FlatStoreOptions& options);

  ~FlatStore();
  FlatStore(const FlatStore&) = delete;
  FlatStore& operator=(const FlatStore&) = delete;

  // Server core responsible for `key`.
  int CoreForKey(uint64_t key) const;

  // ---- synchronous convenience API ----

  // Inserts/updates. `value` must be non-empty and at most 4 MB - 4 KB.
  void Put(uint64_t key, std::string_view value);
  // Reads into `*value`; false if absent.
  bool Get(uint64_t key, std::string* value);
  // Removes; false if absent.
  bool Delete(uint64_t key);
  // Ordered scan: up to `count` pairs with key >= start_key. Served by
  // the ordered index (kMasstree / kFastFairVolatile), or — for kHash
  // stores running the persistent tier — by a merge of the tier's L0
  // list with the un-tiered delta sets (DESIGN.md §11).
  uint64_t Scan(uint64_t start_key, uint64_t count,
                std::vector<std::pair<uint64_t, std::string>>* out);
  // True when Scan has an ordered access path (ordered index or tier).
  bool CanScan() const;
  // Baseline range scan for hash stores WITHOUT the tier: enumerates
  // every index entry on every core, sorts the survivors, reads values.
  // This is the only range query a pure hash index supports; bench_scan
  // quotes it as the tier's comparison arm.
  uint64_t ScanFullIteration(
      uint64_t start_key, uint64_t count,
      std::vector<std::pair<uint64_t, std::string>>* out);

  // ---- asynchronous per-core protocol ----

  // l-persist + stage. `core` must equal CoreForKey(key). Same-key writes
  // pipeline (never kBusy); drains apply them in order.
  OpStatus BeginPut(int core, uint64_t key, const void* value, uint32_t len,
                    OpHandle* handle);
  // Stages a tombstone; kNotFound if the key is absent (nothing staged).
  OpStatus BeginDelete(int core, uint64_t key, OpHandle* handle);
  // One g-persist attempt (leader election / self-batch). Returns the
  // number of entries persisted by this call.
  size_t Pump(int core);
  // Completes up to `max` finished ops in FIFO order: updates the
  // volatile index, retires superseded entries, releases conflict-queue
  // slots. Appends to `*out` if non-null.
  size_t Drain(int core, size_t max, std::vector<Completion>* out);
  // Number of staged-but-incomplete ops on `core`.
  size_t Inflight(int core) const;
  // True while a write on `key` is in flight on its core. Gets on busy
  // keys must be deferred (conflict queue, §3.3 Discussion).
  bool KeyBusy(int core, uint64_t key) const;
  // Read on the owning core (immediate; volatile index + log/block read).
  bool GetOnCore(int core, uint64_t key, std::string* value);
  // Batched read on the owning core: one epoch pin per batch, then a
  // prefetch-interleaved pipeline — phase A hashes/routes every key and
  // issues software prefetches (index::KvIndex::PrefetchGet), phase B
  // completes the probes on warm lines, phase C issues all log-entry
  // header reads back-to-back and consumes them in order, phase D does
  // the same for out-of-log value blocks. Independent misses are
  // amortized by min(n, vt::kMemParallelism). Keys with in-flight writes
  // come back kDeferred (the same conflict rule GetOnCore's callers
  // enforce via KeyBusy) and must be retried after a drain. Requires
  // n <= kMaxReadBatch. Returns the number of keys served (i.e. with
  // status != kDeferred).
  size_t MultiGetOnCore(int core, const uint64_t* keys, size_t n,
                        ReadResult* results);
  // Batched write admission on the owning core (the write-side analogue
  // of MultiGetOnCore): phase A issues every version-resolution index
  // probe with software prefetches (index::KvIndex::PrefetchGet), phase B
  // completes them on warm lines under one overlap window, phase C
  // encodes all entries and l-persists every out-of-log value with a
  // SINGLE trailing fence, phase D stages the whole batch as ONE fused HB
  // group (batch::HbEngine::StageBatch) so the leader persists it through
  // one log reservation and one fence pair. Same-key writes chain
  // versions within the batch (last write wins after all are applied) and
  // behind any in-flight ops. Per-op `statuses[i]`: kOk (staged,
  // `handles[i]` valid), kNotFound (tombstone for an absent key; not
  // staged), kBackpressure (pool lacked room for the whole group — fused
  // staging is all-or-nothing), or kNoSpace (PM exhausted; batch
  // aborted). Requires n <= kMaxWriteBatch. Returns the number staged.
  size_t BeginWriteBatch(int core, const WriteOp* ops, size_t n,
                         OpHandle* handles, OpStatus* statuses);
  // Synchronous batched write: BeginWriteBatch + Pump/Drain to
  // completion, retrying on backpressure. Returns the number applied
  // (ops with status kOk).
  size_t MultiPutOnCore(int core, const WriteOp* ops, size_t n,
                        OpStatus* statuses);

  // ---- transactions (§5.3) ----

  // Sentinel handle for a trivially committed (empty-effect) transaction.
  static constexpr OpHandle kNoOpHandle = UINT64_MAX;

  // Stages `ops` as one atomic transaction: members encode back-to-back
  // into a contiguous chain, a commit record (count, byte length, XXH64
  // checksum) terminates it, and the whole group rides StageBatch's fused
  // path — one reservation, one persist sweep, two fences. All keys must
  // route to `core`; a key with in-flight writes fails the whole txn with
  // kBusy (so kCas/kRmw read stable committed state). Ops resolve in
  // order with read-your-writes inside the txn; kDelete of an absent key
  // stages nothing (a no-op member). On kCommitted, `*commit_handle` is
  // the commit record's handle — ONE Completion per txn surfaces through
  // Drain, carrying it (members complete silently) — or kNoOpHandle when
  // no member staged. Any failure stages nothing (`*failed_op` = the
  // offending op for kBusy/kCasMismatch). Crash semantics: a torn commit
  // recovers to "nothing happened"; a durable commit recovers every op.
  TxnStatus BeginTxn(int core, const TxnOp* ops, size_t n,
                     OpHandle* commit_handle, size_t* failed_op = nullptr);
  // Synchronous wrapper: BeginTxn + Pump/Drain to completion, retrying
  // kBusy/kBackpressure.
  TxnStatus CommitTxnOnCore(int core, const TxnOp* ops, size_t n,
                            size_t* failed_op = nullptr);

  // Convenience transaction builder over owned values; all keys must
  // route to one core (checked at Commit).
  class Txn;

  // ---- lifecycle ----

  // Starts one background log cleaner per HB group (§3.4).
  void StartCleaners();
  void StopCleaners();
  // Runs one synchronous cleaning pass on every group (deterministic
  // benchmarks drive GC this way instead of via background threads).
  // Returns the amount of cleaning work done (victims unlinked plus
  // epoch-deferred frees executed); 0 means nothing left to clean.
  size_t RunCleanersOnce();

  // Forces log rotation on every core (OpLog::SealActiveChunk): partially
  // filled serving chunks become sealed and thus GC-eligible. Crash tests
  // use this to stage deterministic cleaning scenarios cheaply.
  void SealActiveLogChunks();

  // ---- ordered persistent tier (DESIGN.md §11) ----

  // One synchronous tiering pass: per core, converts up to
  // tier_max_chunks eligible sealed chunks (cold cleaner chunks first)
  // into the persistent skiplist and detaches them from the log. Creates
  // the tier lazily on first use. Returns the number of chunks converted.
  // Serialized internally; safe to call concurrently with serving.
  size_t RunTieringOnce();
  // The tier, or nullptr while none exists (never created / not on PM).
  tier::PersistentTier* tier() const { return tier_.get(); }
  // Chunks converted into the tier by this process (stat).
  uint64_t ChunksTiered() const { return chunks_tiered_; }

  // Per-phase timings of the last Open's recovery (bench_recovery).
  struct RecoveryStats {
    uint64_t tier_load_ns = 0;  // tier open + duel-insert into the index
    uint64_t replay_ns = 0;     // un-tiered log (suffix) replay
    uint64_t usage_ns = 0;      // chunk usage + allocator bitmap rebuild
    uint64_t tier_nodes_loaded = 0;
    uint64_t chunks_replayed = 0;
    uint64_t chunks_skipped_tiered = 0;
  };
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  // Normal shutdown (§3.5): checkpoints the volatile index to PM, flushes
  // allocator bitmaps, sets the shutdown flag. The store must be idle.
  void Shutdown();

  // Online checkpoint (§3.5 extension: "checkpoint the volatile index
  // into PMs periodically when the CPU is not busy"): records the current
  // index + per-core log positions so a later crash replays only the log
  // suffix written since. The store must be momentarily idle (no in-
  // flight ops); serving may resume immediately afterwards. Cleaners are
  // paused during the checkpoint (a chunk freed after the checkpoint
  // invalidates it — OpLog::ReleaseChunk clears the flag).
  void CheckpointNow();

  // ---- introspection ----
  index::KvIndex* IndexForCore(int core) const;
  // Socket `core`'s serving thread is bound to (contiguous layout over
  // the pool's sockets, mirroring the allocator's chunk-pool preference).
  // The server runtime sets each core clock's socket from this.
  int SocketForCore(int core) const {
    return alloc_->SocketForCore(core);
  }
  log::OpLog* LogForCore(int core) { return logs_[core].get(); }
  batch::HbEngine* hb() { return hb_.get(); }
  alloc::LazyAllocator* allocator() { return alloc_.get(); }
  log::RootArea* root() { return root_.get(); }
  // Epoch manager guarding log-entry dereferences (tests pin guest slots
  // through it to hold reclamation off).
  common::EpochManager* epochs() { return epochs_.get(); }
  const FlatStoreOptions& options() const { return options_; }
  uint64_t Size() const;
  // Total chunks cleaned by all cleaners (Fig. 13).
  uint64_t ChunksCleaned() const;

 private:
  FlatStore(pm::PmPool* pool, const FlatStoreOptions& options);

  void BuildIndexes();
  void EnsureCleaners();
  // Formats the tier on first use and publishes its root in the
  // superblock (persist-before-publish). No-op if it already exists.
  void EnsureTier();
  // Converts one claimed candidate chunk into the tier. Returns false if
  // the arena cannot grow (PM exhausted); the claim is then released.
  bool ConvertChunk(int core, const log::OpLog::TierCandidate& cand);
  // One representative core per pool socket (tier arena placement).
  std::vector<int> SocketCores() const;
  // Delta sets (and the hash-scan merge path) are maintained whenever a
  // tier exists or will be created on first RunTieringOnce.
  bool TierActive() const {
    return options_.tier_enabled || tier_ != nullptr;
  }
  // Scan served by a k-way merge of the tier's L0 list and the per-core
  // delta sets (keys whose current entry is still un-tiered) — the path
  // for FlatStore-H, whose hash index cannot enumerate keys in order.
  uint64_t ScanMerged(uint64_t start_key, uint64_t count,
                      std::vector<std::pair<uint64_t, std::string>>* out);
  // Crash-recovery replay / usage rebuild (also used after clean open to
  // rebuild allocator bitmaps + chunk usage). `rebuild_index` is false
  // when the checkpoint already provided the index.
  void Recover(bool rebuild_index);
  void LoadCheckpoint();
  void WriteCheckpoint();

  // One in-flight op's bookkeeping.
  struct PendingOp {
    OpHandle handle;
    uint64_t key;
    uint32_t version;
    bool tombstone;
    uint64_t covered_seq;  // tombstone: seq of the chunk it supersedes
    // Transaction roles: a member drains like a normal op but emits no
    // Completion (the txn completes as a unit); the commit record does
    // no index/in-flight work, retires itself (born dead), and emits the
    // txn's single Completion.
    bool txn_member = false;
    bool txn_commit = false;
  };

  // In-flight same-key write chain: count of pending ops and the version
  // of the newest one (the next op continues the chain).
  struct InflightKey {
    uint32_t count = 0;
    uint32_t last_version = 0;
  };

  // Per-core serving state. All containers are allocation-free in steady
  // state: `pending` is a fixed FIFO ring (its population is bounded by
  // the HB request pool, which backpressures Stage before overflow) and
  // `inflight_keys` is an open-addressed table pre-sized for that same
  // bound.
  struct alignas(64) CoreState {
    CoreState()
        : pending(new PendingOp[batch::HbEngine::kPoolSlots]),
          inflight_keys(2 * batch::HbEngine::kPoolSlots) {}

    std::unique_ptr<PendingOp[]> pending;
    size_t pend_head = 0;   // ring index of the oldest pending op
    size_t pend_count = 0;
    common::OpenTable<InflightKey> inflight_keys;

    // Tier delta set (DESIGN.md §11): keys this core owns whose current
    // index entry still lives in an un-tiered log chunk. Only maintained
    // while TierActive(). ScanMerged unions these with the tier's L0
    // list to enumerate keys in order; values are always read back
    // through the index, so a racy membership (a key erased by the
    // tiering pass just as a serving write re-dirtied it) is benign —
    // the key stays discoverable through its tier node.
    SpinLock delta_lock;
    std::set<uint64_t> delta;

    PendingOp& Front() { return pending[pend_head]; }
    void Push(const PendingOp& op) {
      FLATSTORE_DCHECK(pend_count < batch::HbEngine::kPoolSlots);
      pending[(pend_head + pend_count) % batch::HbEngine::kPoolSlots] = op;
      pend_count++;
    }
    void Pop() {
      FLATSTORE_DCHECK(pend_count > 0);
      pend_head = (pend_head + 1) % batch::HbEngine::kPoolSlots;
      pend_count--;
    }
  };

  // Retires the superseded entry `old_packed` of `key` (caller holds an
  // epoch pin so the entry's chunk cannot be freed mid-decode).
  void RetireOld(uint64_t old_packed);

  // Reads the value of a decoded entry into `*value`.
  void ReadValue(const log::DecodedEntry& e, std::string* value) const;

  pm::PmPool* pool_;
  FlatStoreOptions options_;
  std::unique_ptr<log::RootArea> root_;
  std::unique_ptr<alloc::LazyAllocator> alloc_;
  std::vector<std::unique_ptr<log::OpLog>> logs_;
  std::unique_ptr<batch::HbEngine> hb_;
  std::vector<std::unique_ptr<index::KvIndex>> indexes_;  // 1 or per-core
  std::vector<std::unique_ptr<CoreState>> cores_;
  std::unique_ptr<common::EpochManager> epochs_;
  std::vector<std::unique_ptr<log::LogCleaner>> cleaners_;
  // Whether StartCleaners' background threads are live (RunCleanersOnce
  // instantiates cleaner objects without starting threads).
  bool cleaners_running_ = false;

  // Ordered persistent tier (DESIGN.md §11). Created in Create/Open (or
  // lazily under tier_lock_ before any cleaner thread starts), so
  // concurrent readers (cleaner tier_stale hook, ScanMerged) see a
  // stable pointer.
  std::unique_ptr<tier::PersistentTier> tier_;
  // Serializes tiering passes (the tier is single-mutator).
  SpinLock tier_lock_;
  uint64_t chunks_tiered_ = 0;
  RecoveryStats recovery_stats_;
};

// Transaction builder: accumulates ops (values copied), then Commit()
// runs them through CommitTxnOnCore. Convenience layer for tests and
// callers off the hot path — it owns std::string copies and std::function
// callbacks, so the raw TxnOp API remains the allocation-free route.
class FlatStore::Txn {
 public:
  explicit Txn(FlatStore* store) : store_(store) {}

  Txn& Put(uint64_t key, std::string_view value);
  Txn& Delete(uint64_t key);
  // expected == nullopt expects the key absent.
  Txn& Cas(uint64_t key, std::optional<std::string> expected,
           std::string_view value);
  // fn(current, present) -> new value (1..log::kMaxInlineValue bytes).
  Txn& Rmw(uint64_t key,
           std::function<std::string(std::string_view, bool)> fn);

  // Read-your-writes preview: the value `key` would have if the staged
  // ops committed now (kCas assumed to succeed). Falls through to the
  // committed state for untouched keys.
  bool Get(uint64_t key, std::string* value);

  // Ops staged so far.
  size_t size() const { return ops_.size(); }

  // Commits atomically; all keys must route to one core (CHECKed).
  // The builder may be reused after Commit returns.
  TxnStatus Commit(size_t* failed_op = nullptr);

 private:
  struct Staged {
    TxnOpKind kind;
    uint64_t key;
    std::string value;
    std::string expected;
    bool expect_absent = false;
    std::function<std::string(std::string_view, bool)> rmw;
  };
  static uint32_t RmwTrampoline(void* ctx, const void* cur, uint32_t cur_len,
                                uint8_t* out, uint32_t cap);

  FlatStore* store_;
  std::vector<Staged> ops_;
};

}  // namespace core
}  // namespace flatstore

#endif  // FLATSTORE_CORE_FLATSTORE_H_
