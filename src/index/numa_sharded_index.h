// NUMA-braided index: one sub-index per socket, keys routed so a lookup's
// pointer chase stays on its home socket.
//
// FlatStore's volatile indexes live in DRAM. On a multi-socket server a
// single monolithic tree interleaves its nodes across both sockets'
// memory: every probe chases pointers through remote DRAM about half the
// time, paying the inter-socket link on each node miss. The braided
// variant instead keeps S independent sub-indexes, each homed on one
// socket (PmContext::home_socket), and routes a key to the sub-index of
// the socket that serves the key's core:
//
//   shard(key) = SocketForCore(CoreForKey(key))
//              = (HashKey(key, seed) % num_cores) * sockets / num_cores
//
// Because the routing reuses the engine's CoreForKey hash, the core that
// serves a request always probes its *own* socket's sub-index — the whole
// pointer chase is local. A probe issued from a foreign socket (cleaner
// relocation, Scan merge) pays at most the one cross-socket hop the
// home_socket surcharge models; the chase never ping-pongs between
// sockets the way an interleaved tree does.
//
// Scan stitches the per-socket trees back together with a k-way merge;
// ordered iteration is the one operation that inherently crosses sockets.

#ifndef FLATSTORE_INDEX_NUMA_SHARDED_INDEX_H_
#define FLATSTORE_INDEX_NUMA_SHARDED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "index/kv_index.h"

namespace flatstore {
namespace index {

// Wraps `shards.size()` per-socket OrderedKvIndex instances (shard s
// should be built with PmContext::home_socket = s). Routing mirrors the
// engine: `num_cores` and `seed` must match FlatStore's CoreForKey so
// core-to-shard affinity holds.
class NumaShardedIndex final : public OrderedKvIndex {
 public:
  NumaShardedIndex(std::vector<std::unique_ptr<OrderedKvIndex>> shards,
                   int num_cores, uint64_t seed)
      : shards_(std::move(shards)), num_cores_(num_cores), seed_(seed) {
    FLATSTORE_CHECK_GE(shards_.size(), 1u);
    FLATSTORE_CHECK_GE(num_cores_, static_cast<int>(shards_.size()));
  }

  // Shard (== socket) a key routes to. Exposed so tests can assert the
  // routing agrees with the engine's core placement.
  int ShardForKey(uint64_t key) const {
    const int core =
        static_cast<int>(HashKey(key, seed_) %
                         static_cast<uint64_t>(num_cores_));
    return core * static_cast<int>(shards_.size()) / num_cores_;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const OrderedKvIndex* shard(int s) const { return shards_[s].get(); }

  bool Upsert(uint64_t key, uint64_t value, uint64_t* old_value) override {
    return shards_[ShardForKey(key)]->Upsert(key, value, old_value);
  }
  bool Get(uint64_t key, uint64_t* value) const override {
    return shards_[ShardForKey(key)]->Get(key, value);
  }
  void PrefetchGet(uint64_t key, LookupHint* hint) const override {
    shards_[ShardForKey(key)]->PrefetchGet(key, hint);
  }
  bool GetWithHint(uint64_t key, const LookupHint& hint,
                   uint64_t* value) const override {
    return shards_[ShardForKey(key)]->GetWithHint(key, hint, value);
  }
  void PrefetchInsert(uint64_t key, LookupHint* hint) const override {
    shards_[ShardForKey(key)]->PrefetchInsert(key, hint);
  }
  bool InsertWithHint(uint64_t key, uint64_t value, uint64_t* old_value,
                      const LookupHint& hint) override {
    return shards_[ShardForKey(key)]->InsertWithHint(key, value, old_value,
                                                     hint);
  }
  bool Erase(uint64_t key, uint64_t* old_value) override {
    return shards_[ShardForKey(key)]->Erase(key, old_value);
  }
  bool CompareExchange(uint64_t key, uint64_t expected,
                       uint64_t desired) override {
    return shards_[ShardForKey(key)]->CompareExchange(key, expected, desired);
  }
  bool EraseIfEqual(uint64_t key, uint64_t expected) override {
    return shards_[ShardForKey(key)]->EraseIfEqual(key, expected);
  }

  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const override {
    for (const auto& s : shards_) s->ForEach(fn);
  }

  uint64_t Size() const override {
    uint64_t n = 0;
    for (const auto& s : shards_) n += s->Size();
    return n;
  }

  const char* Name() const override { return "NUMA-braided"; }

  // K-way merge over the per-socket trees. Each sub-scan over-fetches
  // `count` pairs (any key >= start_key on any shard may rank within the
  // global first `count`), then the merge keeps the smallest `count`.
  uint64_t Scan(uint64_t start_key, uint64_t count,
                std::vector<KvPair>* out) const override {
    if (count == 0) return 0;
    std::vector<std::vector<KvPair>> runs(shards_.size());
    for (size_t s = 0; s < shards_.size(); s++) {
      runs[s].reserve(count);
      shards_[s]->Scan(start_key, count, &runs[s]);
    }
    std::vector<size_t> pos(shards_.size(), 0);
    uint64_t taken = 0;
    while (taken < count) {
      int best = -1;
      for (size_t s = 0; s < runs.size(); s++) {
        if (pos[s] >= runs[s].size()) continue;
        if (best < 0 ||
            runs[s][pos[s]].key < runs[best][pos[best]].key) {
          best = static_cast<int>(s);
        }
      }
      if (best < 0) break;
      out->push_back(runs[best][pos[best]++]);
      taken++;
    }
    return taken;
  }

 private:
  std::vector<std::unique_ptr<OrderedKvIndex>> shards_;
  int num_cores_;
  uint64_t seed_;
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_NUMA_SHARDED_INDEX_H_
