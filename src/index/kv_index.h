// Common interface of every index structure in src/index.
//
// All five structures (CCEH, Level-Hashing, FAST&FAIR, FPTree, Masstree)
// map fixed 8-byte keys to 64-bit values — matching the paper's evaluation
// setup — and can be instantiated in either of two modes:
//
//  * volatile mode (`PmContext::pool == nullptr`): nodes live in DRAM and
//    no flush instructions are issued. FlatStore uses indexes this way
//    ("Since the index persistence has already been guaranteed by the
//    OpLog, we place CCEH directly in DRAM and remove all its flush
//    operations", paper §4.1).
//  * persistent mode: nodes are carved out of a PM pool through the lazy-
//    persist allocator and every structural update is flushed, exactly the
//    write-amplification behaviour §2.2 complains about. The baseline
//    engines (core/baseline.h) use this mode.
//
// Values: FlatStore packs {log entry offset, 20-bit version} into the
// value; baselines store the value-block offset. The index does not
// interpret values, except that kNoValue is reserved.

#ifndef FLATSTORE_INDEX_KV_INDEX_H_
#define FLATSTORE_INDEX_KV_INDEX_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "pm/pm_pool.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace index {

// Reserved key: never insert this key (used as the empty-slot sentinel by
// the hash structures, as in the original CCEH code which reserves INVALID).
inline constexpr uint64_t kReservedKey = ~0ull;

// Reserved value meaning "no value".
inline constexpr uint64_t kNoValue = ~0ull;

// Where an index keeps its nodes. pool == nullptr selects volatile mode.
struct PmContext {
  pm::PmPool* pool = nullptr;
  alloc::LazyAllocator* alloc = nullptr;
  int core = 0;  // allocator partition used for node allocations
  // Socket whose DRAM holds this index's volatile nodes. kSocketNone (the
  // default) keeps the index socket-agnostic — misses cost kCpuCacheMiss
  // regardless of which core probes, the historical single-socket model.
  // With a concrete socket, a probe from a core bound to another socket
  // pays the cross-socket load surcharge per node dereference;
  // kSocketInterleaved models pages striped across sockets (half the
  // surcharge on every miss — the placement-off A/B configuration).
  int home_socket = vt::kSocketNone;

  bool persistent() const { return pool != nullptr; }
  // Charges the fetch of one node/bucket line at `p`: an Optane media
  // read (through the device's bandwidth model) in persistent mode, a
  // DRAM cache miss in volatile mode. The volatile miss is amortized by
  // the active vt overlap factor (1 — i.e. unchanged — outside a batched
  // MultiGet's prefetch-interleaved probe phase); the NUMA surcharge for
  // remote-homed nodes rides inside the amortized cost.
  void ChargeNodeRead(const void* p) const {
    if (pool != nullptr) {
      pool->ChargeRead(p, 64);
    } else {
      vt::ChargeMissAt(home_socket, vt::kCpuCacheMiss);
    }
  }
  // Flush helpers that collapse to no-ops in volatile mode.
  // fs-lint: deferred-fence(thin forwarder to the pool primitive; every caller owns its own fence placement)
  void Persist(const void* p, uint64_t len) const {
    if (pool != nullptr) pool->Persist(p, len);
  }
  void Fence() const {
    if (pool != nullptr) pool->Fence();
  }
  void PersistFence(const void* p, uint64_t len) const {
    if (pool != nullptr) pool->PersistFence(p, len);
  }
};


// A key/value pair returned by scans.
struct KvPair {
  uint64_t key;
  uint64_t value;
};

// Opaque two-phase lookup state handed from PrefetchGet to GetWithHint.
// Plain POD so MultiGet batches keep arrays of hints without allocating;
// field meaning is private to each index. A hint is only valid for the
// key PrefetchGet produced it for, and only until the next structural
// mutation by the owning writer (GetWithHint revalidates cheaply and
// falls back to a plain probe when stale).
struct LookupHint {
  uint64_t hash = 0;         // primary hash (hash indexes)
  uint64_t hash2 = 0;        // secondary hash (level hashing)
  const void* node = nullptr;  // located bucket/segment/leaf
  bool valid = false;        // phase A located something prefetchable
};

// Abstract point-query index.
class KvIndex {
 public:
  virtual ~KvIndex() = default;

  // Inserts or updates `key`; when updating, the previous value is
  // returned through `*old_value`. Returns true iff the key existed.
  // Atomic with respect to CompareExchange (the log cleaner's relocation),
  // which is what lets the engine safely retire the superseded log entry.
  // `key` must not be kReservedKey.
  virtual bool Upsert(uint64_t key, uint64_t value, uint64_t* old_value) = 0;

  // Looks up `key`; fills `*value` and returns true if present.
  virtual bool Get(uint64_t key, uint64_t* value) const = 0;

  // ---- two-phase lookup (the batched-read pipeline, ISSUE 3) ----
  //
  // Phase A: hash/route `key`, issue software prefetches for the memory
  // the probe will touch, and record what was located in `*hint`. Must
  // not block and must not depend on the prefetched lines having
  // arrived. Base-class default: no-op (the hint stays invalid), so
  // indexes without a two-phase implementation remain correct through
  // the GetWithHint fallback.
  virtual void PrefetchGet(uint64_t key, LookupHint* hint) const {
    (void)key;
    hint->valid = false;
  }

  // Phase B: completes the lookup started by PrefetchGet(key, hint).
  // With a valid, still-fresh hint the probe touches prefetched lines —
  // charged as overlapped misses under the caller's vt overlap window.
  // Base-class default (also the stale-hint fallback): a plain Get()
  // inside a serial overlap scope, so an un-prefetched probe pays full
  // miss latency and cannot free-ride on the batch.
  virtual bool GetWithHint(uint64_t key, const LookupHint& hint,
                           uint64_t* value) const {
    (void)hint;
    vt::ScopedOverlap serial(1);
    return Get(key, value);
  }

  // ---- two-phase insert (the batched-write pipeline, ISSUE 6) ----
  //
  // Phase A of a batched write: hash/route `key`, issue software
  // prefetches *for write* on the lines the upsert will mutate, and
  // record what was located in `*hint`. Same contract as PrefetchGet:
  // never blocks, never depends on the prefetched lines having arrived.
  // Base-class default: no-op (hint stays invalid) so indexes without an
  // implementation remain correct through the InsertWithHint fallback.
  virtual void PrefetchInsert(uint64_t key, LookupHint* hint) const {
    (void)key;
    hint->valid = false;
  }

  // Phase B: completes the upsert started by PrefetchInsert(key, hint).
  // Semantics are identical to Upsert (returns true iff the key existed;
  // previous value through `*old_value`). With a valid, still-fresh hint
  // the probe runs on warm lines; implementations revalidate the hint
  // under their write lock (splits/resizes between the phases) exactly
  // like GetWithHint and fall back to the full upsert when stale — so a
  // hinted insert is never less correct than Upsert, only cheaper.
  // Base-class default (also the stale-hint fallback): a plain Upsert()
  // inside a serial overlap scope, so an un-prefetched mutation pays full
  // miss latency and cannot free-ride on the batch.
  virtual bool InsertWithHint(uint64_t key, uint64_t value,
                              uint64_t* old_value, const LookupHint& hint) {
    (void)hint;
    vt::ScopedOverlap serial(1);
    return Upsert(key, value, old_value);
  }

  // Removes `key`; the removed value is returned through `*old_value`.
  // Returns true iff the key was present.
  virtual bool Erase(uint64_t key, uint64_t* old_value) = 0;

  // Convenience wrappers.
  // Returns true if the key was newly inserted, false if updated.
  bool Insert(uint64_t key, uint64_t value) {
    uint64_t old;
    return !Upsert(key, value, &old);
  }
  // Returns true if the key was present.
  bool Delete(uint64_t key) {
    uint64_t old;
    return Erase(key, &old);
  }

  // Atomically replaces the value of `key` if it currently equals
  // `expected`. Returns true on success. Used by the log cleaner to
  // relocate entries concurrently with the owning core (paper §3.4).
  virtual bool CompareExchange(uint64_t key, uint64_t expected,
                               uint64_t desired) = 0;

  // Atomically removes `key` if its value equals `expected`. Returns true
  // on success. Used by the log cleaner to retire tombstone index entries.
  virtual bool EraseIfEqual(uint64_t key, uint64_t expected) = 0;

  // Invokes `fn(key, value)` for every live entry, in unspecified order.
  // Not safe against concurrent mutation; used for the normal-shutdown
  // index checkpoint (paper §3.5) and by tests.
  virtual void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const = 0;

  // Number of live keys.
  virtual uint64_t Size() const = 0;

  // Human-readable structure name (bench output).
  virtual const char* Name() const = 0;
};

// Indexes that additionally support ordered range scans.
class OrderedKvIndex : public KvIndex {
 public:
  // Appends up to `count` pairs with key >= start_key, in key order, to
  // `*out`. Returns the number appended.
  virtual uint64_t Scan(uint64_t start_key, uint64_t count,
                        std::vector<KvPair>* out) const = 0;
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_KV_INDEX_H_
