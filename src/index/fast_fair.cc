#include "index/fast_fair.h"

#include <cstring>

#include "common/cacheline.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace index {

FastFair::FastFair(const PmContext& ctx) : arena_(ctx) {
  root_ = NewNode(/*leaf=*/true);
}

FastFair::Node* FastFair::NewNode(bool leaf) {
  auto* n = static_cast<Node*>(arena_.Alloc(sizeof(Node)));
  n->is_leaf = leaf ? 1 : 0;
  n->count = 0;
  n->sibling = nullptr;
  n->leftmost = nullptr;
  return n;
}

int FastFair::LowerBound(const Node* n, uint64_t key) {
  // Linear scan, as in the original (sorted 512 B nodes are scanned, not
  // binary-searched, to stay cache friendly); one probe charge per entry.
  int i = 0;
  while (i < static_cast<int>(n->count) && n->entries[i].key < key) {
    vt::Charge(vt::kCpuSlotProbe);
    i++;
  }
  return i;
}

FastFair::Node* FastFair::FindLeaf(uint64_t key) const {
  // Every node lives in PM (FAST&FAIR's design): traversal pays media
  // reads in persistent mode.
  Node* n = root_;
  while (n->is_leaf == 0) {
    arena_.ctx().ChargeNodeRead(n);  // descend one level
    int i = LowerBound(n, key);
    if (i < static_cast<int>(n->count) && n->entries[i].key == key) {
      n = reinterpret_cast<Node*>(n->entries[i].value);
    } else if (i == 0) {
      n = n->leftmost;
    } else {
      n = reinterpret_cast<Node*>(n->entries[i - 1].value);
    }
  }
  arena_.ctx().ChargeNodeRead(n);  // leaf line
  return n;
}

void FastFair::InsertInNode(Node* n, uint64_t key, uint64_t value) {
  int pos = LowerBound(n, key);
  // FAST: shift entries right one by one with 8-byte stores. Every write
  // is real work (charged) and every touched cacheline is flushed.
  for (int i = static_cast<int>(n->count); i > pos; i--) {
    n->entries[i] = n->entries[i - 1];
    vt::Charge(2 * vt::kCpuSlotProbe);
  }
  n->entries[pos].key = key;
  n->entries[pos].value = value;
  n->count++;
  // Persist the disturbed region: from the insert position to the (new)
  // end, plus the header holding `count`.
  const char* from = reinterpret_cast<const char*>(&n->entries[pos]);
  const char* to = reinterpret_cast<const char*>(&n->entries[n->count]);
  arena_.ctx().Persist(from, static_cast<uint64_t>(to - from));
  arena_.ctx().Persist(n, 8);  // header line (count)
  arena_.ctx().Fence();
}

FastFair::Node* FastFair::SplitNode(Node* n, uint64_t* up_key) {
  Node* right = NewNode(n->is_leaf != 0);
  const int half = kCard / 2;
  const int moved = kCard - half;
  if (n->is_leaf != 0) {
    std::memcpy(right->entries, &n->entries[half],
                sizeof(Node::Entry) * static_cast<size_t>(moved));
    right->count = static_cast<uint32_t>(moved);
    *up_key = right->entries[0].key;
  } else {
    // Inner split: the middle key moves up; its child becomes the new
    // node's leftmost.
    *up_key = n->entries[half].key;
    right->leftmost = reinterpret_cast<Node*>(n->entries[half].value);
    std::memcpy(right->entries, &n->entries[half + 1],
                sizeof(Node::Entry) * static_cast<size_t>(moved - 1));
    right->count = static_cast<uint32_t>(moved - 1);
  }
  vt::Charge(vt::CostMemcpy(sizeof(Node::Entry) *
                            static_cast<uint64_t>(moved)));
  right->sibling = n->sibling;
  // Persist the new node first, then link it (FAIR ordering: readers that
  // race see either the old or the linked state).
  arena_.ctx().Persist(right, sizeof(Node));
  arena_.ctx().Fence();
  n->sibling = right;
  n->count = static_cast<uint32_t>(half);
  arena_.ctx().Persist(n, 16);  // header + sibling
  arena_.ctx().Fence();
  return right;
}

FastFair::SplitResult FastFair::InsertRecursive(Node* n, uint64_t key,
                                                uint64_t value,
                                                uint64_t* old_value,
                                                bool* updated) {
  if (n->is_leaf != 0) {
    arena_.ctx().ChargeNodeRead(n);
    int i = LowerBound(n, key);
    if (i < static_cast<int>(n->count) && n->entries[i].key == key) {
      // In-place value overwrite: one flushed line, re-flushed for hot
      // keys under skew (paper §2.3).
      *old_value = n->entries[i].value;
      *updated = true;
      n->entries[i].value = value;
      arena_.ctx().PersistFence(&n->entries[i].value, 8);
      return {};
    }
    size_++;
    if (static_cast<int>(n->count) < kCard) {
      InsertInNode(n, key, value);
      return {};
    }
    uint64_t up;
    Node* right = SplitNode(n, &up);
    if (key < up) {
      InsertInNode(n, key, value);
    } else {
      InsertInNode(right, key, value);
    }
    return {right, up};
  }

  // Inner node: descend.
  arena_.ctx().ChargeNodeRead(n);
  int i = LowerBound(n, key);
  Node* child;
  if (i < static_cast<int>(n->count) && n->entries[i].key == key) {
    child = reinterpret_cast<Node*>(n->entries[i].value);
  } else if (i == 0) {
    child = n->leftmost;
  } else {
    child = reinterpret_cast<Node*>(n->entries[i - 1].value);
  }
  SplitResult r = InsertRecursive(child, key, value, old_value, updated);
  if (r.right == nullptr) return {};

  // Child split: push the separator into this node.
  if (static_cast<int>(n->count) < kCard) {
    InsertInNode(n, r.up_key, reinterpret_cast<uint64_t>(r.right));
    return {};
  }
  uint64_t up;
  Node* right = SplitNode(n, &up);
  Node* target = r.up_key < up ? n : right;
  InsertInNode(target, r.up_key, reinterpret_cast<uint64_t>(r.right));
  return {right, up};
}

bool FastFair::Upsert(uint64_t key, uint64_t value, uint64_t* old_value) {
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);  // writer latch
  return UpsertLocked(key, value, old_value);
}

bool FastFair::UpsertLocked(uint64_t key, uint64_t value,
                            uint64_t* old_value) {
  bool updated = false;
  SplitResult r = InsertRecursive(root_, key, value, old_value, &updated);
  if (r.right != nullptr) {
    // Root split: grow the tree by one level.
    Node* new_root = NewNode(/*leaf=*/false);
    new_root->leftmost = root_;
    new_root->entries[0].key = r.up_key;
    new_root->entries[0].value = reinterpret_cast<uint64_t>(r.right);
    new_root->count = 1;
    arena_.ctx().Persist(new_root, sizeof(Node));
    arena_.ctx().Fence();
    // The root pointer itself is DRAM bookkeeping here (the original
    // persists it; one 8-byte flush per tree-height increase is noise).
    root_ = new_root;
  }
  return updated;
}

bool FastFair::Get(uint64_t key, uint64_t* value) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  Node* leaf = FindLeaf(key);
  int i = LowerBound(leaf, key);
  if (i < static_cast<int>(leaf->count) && leaf->entries[i].key == key) {
    *value = leaf->entries[i].value;
    return true;
  }
  return false;
}

void FastFair::PrefetchGet(uint64_t key, LookupHint* hint) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Node* leaf = FindLeaf(key);
  // Pull the whole 512 B node so the phase-B linear scan stays on warm
  // lines.
  const char* base = reinterpret_cast<const char*>(leaf);
  for (uint64_t off = 0; off < sizeof(Node); off += 64) {
    __builtin_prefetch(base + off, 0, 3);
  }
  vt::Charge((sizeof(Node) / 64) * vt::kPrefetchIssueCost);
  hint->node = leaf;
  hint->valid = true;
}

bool FastFair::GetWithHint(uint64_t key, const LookupHint& hint,
                           uint64_t* value) const {
  if (!hint.valid) return KvIndex::GetWithHint(key, hint, value);
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Node* leaf = static_cast<const Node*>(hint.node);
  // FAIR sibling links: a split between the phases moves the upper half
  // right, never left (no merges), and nodes are never freed — so a stale
  // hint is repaired by walking right. Each hop is an un-prefetched node.
  while (leaf->count > 0 && leaf->sibling != nullptr &&
         key > leaf->entries[leaf->count - 1].key) {
    leaf = leaf->sibling;
    arena_.ctx().ChargeNodeRead(leaf);
  }
  int i = LowerBound(leaf, key);
  if (i < static_cast<int>(leaf->count) && leaf->entries[i].key == key) {
    *value = leaf->entries[i].value;
    return true;
  }
  return false;
}

void FastFair::PrefetchInsert(uint64_t key, LookupHint* hint) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Node* leaf = FindLeaf(key);
  // Pull the whole 512 B node for write: the FAST shift dirties the
  // region from the insert position to the end.
  const char* base = reinterpret_cast<const char*>(leaf);
  for (uint64_t off = 0; off < sizeof(Node); off += 64) {
    __builtin_prefetch(base + off, 1, 3);
  }
  vt::Charge((sizeof(Node) / 64) * vt::kPrefetchIssueCost);
  hint->node = leaf;
  hint->valid = true;
}

bool FastFair::InsertWithHint(uint64_t key, uint64_t value,
                              uint64_t* old_value, const LookupHint& hint) {
  if (!hint.valid) return KvIndex::InsertWithHint(key, value, old_value, hint);
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);  // writer latch
  // Write-side FAIR repair, stricter than GetWithHint's: an insert must
  // land in exactly the leaf a fresh descend would pick. Hop right only
  // when key >= min(sibling) proves the key is at or past the sibling's
  // separator; settle only when key <= max(leaf) (or the leaf is
  // rightmost) proves this leaf still covers it. Ambiguous gaps, drained
  // leaves and splits take the full serial descend.
  Node* leaf = static_cast<Node*>(const_cast<void*>(hint.node));
  while (true) {
    const int count = static_cast<int>(leaf->count);
    if (count == 0) break;  // no fence keys to reason with: stale
    if (key <= leaf->entries[count - 1].key || leaf->sibling == nullptr) {
      int i = LowerBound(leaf, key);
      if (i < count && leaf->entries[i].key == key) {
        // In-place value overwrite on the warm line.
        *old_value = leaf->entries[i].value;
        leaf->entries[i].value = value;
        arena_.ctx().PersistFence(&leaf->entries[i].value, 8);
        return true;
      }
      if (count < kCard) {
        InsertInNode(leaf, key, value);
        size_++;
        return false;  // no previous value
      }
      break;  // full: splitting needs the root path the hint lacks
    }
    Node* next = leaf->sibling;
    arena_.ctx().ChargeNodeRead(next);  // un-prefetched sibling node
    if (next->count == 0 || key < next->entries[0].key) {
      break;  // gap between max(leaf) and min(sibling): ambiguous
    }
    leaf = next;
  }
  // Stale / ambiguous / needs-split: the full serial upsert.
  vt::ScopedOverlap serial(1);
  return UpsertLocked(key, value, old_value);
}

bool FastFair::Erase(uint64_t key, uint64_t* old_value) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Node* leaf = FindLeaf(key);
  int pos = LowerBound(leaf, key);
  if (pos >= static_cast<int>(leaf->count) || leaf->entries[pos].key != key) {
    return false;
  }
  *old_value = leaf->entries[pos].value;
  // FAST shift-left removal (no merging; see header).
  for (int i = pos; i + 1 < static_cast<int>(leaf->count); i++) {
    leaf->entries[i] = leaf->entries[i + 1];
    vt::Charge(2 * vt::kCpuSlotProbe);
  }
  leaf->count--;
  const char* from = reinterpret_cast<const char*>(&leaf->entries[pos]);
  const char* to = reinterpret_cast<const char*>(&leaf->entries[leaf->count]);
  if (to > from) {
    arena_.ctx().Persist(from, static_cast<uint64_t>(to - from));
  }
  arena_.ctx().Persist(leaf, 8);
  arena_.ctx().Fence();
  size_--;
  return true;
}

bool FastFair::CompareExchange(uint64_t key, uint64_t expected,
                               uint64_t desired) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Node* leaf = FindLeaf(key);
  int i = LowerBound(leaf, key);
  if (i >= static_cast<int>(leaf->count) || leaf->entries[i].key != key ||
      leaf->entries[i].value != expected) {
    return false;
  }
  leaf->entries[i].value = desired;
  arena_.ctx().PersistFence(&leaf->entries[i].value, 8);
  return true;
}

uint64_t FastFair::Scan(uint64_t start_key, uint64_t count,
                        std::vector<KvPair>* out) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  uint64_t n = 0;
  Node* leaf = FindLeaf(start_key);
  int i = LowerBound(leaf, start_key);
  while (leaf != nullptr && n < count) {
    vt::Charge(vt::kCpuCacheMiss);
    for (; i < static_cast<int>(leaf->count) && n < count; i++) {
      out->push_back({leaf->entries[i].key, leaf->entries[i].value});
      n++;
      vt::Charge(vt::kCpuSlotProbe);
    }
    leaf = leaf->sibling;  // FAIR sibling walk
    i = 0;
  }
  return n;
}

void FastFair::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Node* n = root_;
  while (n->is_leaf == 0) n = n->leftmost;
  for (; n != nullptr; n = n->sibling) {
    for (uint32_t i = 0; i < n->count; i++) {
      fn(n->entries[i].key, n->entries[i].value);
    }
  }
}

int FastFair::Height() const {
  int h = 1;
  const Node* n = root_;
  while (n->is_leaf == 0) {
    n = n->leftmost;
    h++;
  }
  return h;
}


bool FastFair::EraseIfEqual(uint64_t key, uint64_t expected) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Node* leaf = FindLeaf(key);
  int pos = LowerBound(leaf, key);
  if (pos >= static_cast<int>(leaf->count) ||
      leaf->entries[pos].key != key ||
      leaf->entries[pos].value != expected) {
    return false;
  }
  for (int i = pos; i + 1 < static_cast<int>(leaf->count); i++) {
    leaf->entries[i] = leaf->entries[i + 1];
    vt::Charge(2 * vt::kCpuSlotProbe);
  }
  leaf->count--;
  arena_.ctx().PersistFence(leaf, 8);
  size_--;
  return true;
}

}  // namespace index
}  // namespace flatstore
