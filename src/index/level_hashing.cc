#include "index/level_hashing.h"

#include <cstring>

#include "common/hash.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace index {

LevelHashing::LevelHashing(const PmContext& ctx, uint32_t initial_level_bits)
    : arena_(ctx), level_bits_(initial_level_bits) {
  FLATSTORE_CHECK_GE(initial_level_bits, 2u);
  top_ = NewLevel(1ull << level_bits_);
  bottom_ = NewLevel(1ull << (level_bits_ - 1));
}

LevelHashing::Bucket* LevelHashing::NewLevel(uint64_t buckets) {
  auto* level =
      static_cast<Bucket*>(arena_.Alloc(buckets * sizeof(Bucket)));
  std::memset(level, 0xFF, buckets * sizeof(Bucket));  // keys = reserved
  return level;
}

LevelHashing::Bucket& LevelHashing::BucketAt(bool top, uint64_t h) const {
  const uint64_t mask =
      (top ? (1ull << level_bits_) : (1ull << (level_bits_ - 1))) - 1;
  return (top ? top_ : bottom_)[h & mask];
}

LevelHashing::Bucket& LevelHashing::Cand(bool top, int which,
                                         uint64_t key) const {
  return BucketAt(top, which == 0 ? HashKey(key) : HashKey2(key));
}

LevelHashing::SlotRef LevelHashing::FindSlotHashed(uint64_t key, uint64_t h1,
                                                   uint64_t h2) const {
  for (bool top : {true, false}) {
    for (uint64_t h : {h1, h2}) {
      Bucket& b = BucketAt(top, h);
      arena_.ctx().ChargeNodeRead(&b);
      for (int i = 0; i < kSlots; i++) {
        vt::Charge(vt::kCpuSlotProbe);
        if (b.keys[i] == key) return {&b, i};
      }
    }
  }
  return {};
}

LevelHashing::SlotRef LevelHashing::FindSlot(uint64_t key) const {
  vt::Charge(2 * vt::kCpuHash);
  return FindSlotHashed(key, HashKey(key), HashKey2(key));
}

bool LevelHashing::TryInsert(Bucket& bucket, uint64_t key, uint64_t value) {
  for (int i = 0; i < kSlots; i++) {
    if (bucket.keys[i] == kReservedKey) {
      bucket.values[i] = value;
      std::atomic_ref<uint64_t>(bucket.keys[i])
          .store(key, std::memory_order_release);
      arena_.ctx().PersistFence(&bucket, sizeof(Bucket));
      // relaxed: size_ is an approximate stat counter, no ordering.
      size_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool LevelHashing::TryMove(Bucket& bucket, bool top) {
  // "Rehash the related entries when two keys conflict": relocate one
  // resident of `bucket` to its alternate bucket in the same level.
  for (int i = 0; i < kSlots; i++) {
    const uint64_t k = bucket.keys[i];
    if (k == kReservedKey) continue;
    for (int which = 0; which < 2; which++) {
      Bucket& alt = Cand(top, which, k);
      if (&alt == &bucket) continue;
      vt::Charge(vt::kCpuHash + vt::kCpuCacheMiss);
      for (int j = 0; j < kSlots; j++) {
        if (alt.keys[j] == kReservedKey) {
          // Write the copy, persist it, then delete the original — two
          // line flushes for a single conflict-triggered movement.
          alt.values[j] = bucket.values[i];
          std::atomic_ref<uint64_t>(alt.keys[j])
              .store(k, std::memory_order_release);
          arena_.ctx().PersistFence(&alt, sizeof(Bucket));
          std::atomic_ref<uint64_t>(bucket.keys[i])
              .store(kReservedKey, std::memory_order_release);
          arena_.ctx().PersistFence(&bucket.keys[i], 8);
          return true;
        }
      }
    }
  }
  return false;
}

bool LevelHashing::InsertNoResize(uint64_t key, uint64_t value,
                                  uint64_t* old_value, bool* updated) {
  vt::Charge(2 * vt::kCpuHash);
  return InsertNoResizeHashed(key, value, old_value, updated, HashKey(key),
                              HashKey2(key));
}

bool LevelHashing::InsertNoResizeHashed(uint64_t key, uint64_t value,
                                        uint64_t* old_value, bool* updated,
                                        uint64_t h1, uint64_t h2) {
  // In-place update.
  SlotRef ref = FindSlotHashed(key, h1, h2);
  if (ref.bucket != nullptr) {
    *old_value = ref.bucket->values[ref.slot];
    *updated = true;
    std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
        .store(value, std::memory_order_release);
    arena_.ctx().PersistFence(&ref.bucket->values[ref.slot], 8);
    return true;
  }
  // Top candidates first (reads prefer the top level), then bottom.
  for (bool top : {true, false}) {
    for (uint64_t h : {h1, h2}) {
      if (TryInsert(BucketAt(top, h), key, value)) return true;
    }
  }
  // Conflict: movement within each candidate bucket's level.
  for (bool top : {true, false}) {
    for (uint64_t h : {h1, h2}) {
      Bucket& b = BucketAt(top, h);
      if (TryMove(b, top) && TryInsert(b, key, value)) return true;
    }
  }
  return false;
}

bool LevelHashing::Upsert(uint64_t key, uint64_t value,
                          uint64_t* old_value) {
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SpinLock> g(mutate_lock_);
  bool updated = false;
  while (!InsertNoResize(key, value, old_value, &updated)) Resize();
  return updated;
}

void LevelHashing::Resize() {
  // New top with 2^(bits+1) buckets; old top becomes the bottom; the old
  // bottom's entries are rehashed into the new structure.
  resizes_++;
  Bucket* old_bottom = bottom_;
  const uint64_t old_bottom_buckets = 1ull << (level_bits_ - 1);
  level_bits_++;
  bottom_ = top_;
  top_ = NewLevel(1ull << level_bits_);

  for (uint64_t b = 0; b < old_bottom_buckets; b++) {
    for (int i = 0; i < kSlots; i++) {
      const uint64_t k = old_bottom[b].keys[i];
      if (k == kReservedKey) continue;
      // relaxed: size_ is an approximate stat counter, no ordering.
      size_.fetch_sub(1, std::memory_order_relaxed);  // re-counted below
      vt::Charge(vt::kCpuCacheMiss);
      uint64_t unused_old;
      bool unused_updated;
      bool ok = InsertNoResize(k, old_bottom[b].values[i], &unused_old,
                               &unused_updated);
      // The new table has 3x the old capacity; rehash cannot fail.
      FLATSTORE_CHECK(ok);
    }
  }
  arena_.Free(old_bottom);
}

void LevelHashing::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  const uint64_t top_n = 1ull << level_bits_;
  for (uint64_t b = 0; b < top_n + top_n / 2; b++) {
    const Bucket& bucket = b < top_n ? top_[b] : bottom_[b - top_n];
    for (int i = 0; i < kSlots; i++) {
      if (bucket.keys[i] != kReservedKey) fn(bucket.keys[i], bucket.values[i]);
    }
  }
}

bool LevelHashing::Get(uint64_t key, uint64_t* value) const {
  SlotRef ref = FindSlot(key);
  if (ref.bucket == nullptr) return false;
  *value = std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
               .load(std::memory_order_acquire);
  return true;
}

void LevelHashing::PrefetchGet(uint64_t key, LookupHint* hint) const {
  vt::Charge(2 * vt::kCpuHash);
  hint->hash = HashKey(key);
  hint->hash2 = HashKey2(key);
  for (bool top : {true, false}) {
    for (uint64_t h : {hint->hash, hint->hash2}) {
      __builtin_prefetch(&BucketAt(top, h), 0, 3);
    }
  }
  vt::Charge(4 * vt::kPrefetchIssueCost);
  hint->node = top_;  // resize swaps levels; used as a freshness stamp
  hint->valid = true;
}

bool LevelHashing::GetWithHint(uint64_t key, const LookupHint& hint,
                               uint64_t* value) const {
  if (!hint.valid || hint.node != top_) {
    return KvIndex::GetWithHint(key, hint, value);
  }
  SlotRef ref = FindSlotHashed(key, hint.hash, hint.hash2);
  if (ref.bucket == nullptr) return false;
  *value = std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
               .load(std::memory_order_acquire);
  return true;
}

void LevelHashing::PrefetchInsert(uint64_t key, LookupHint* hint) const {
  vt::Charge(2 * vt::kCpuHash);
  hint->hash = HashKey(key);
  hint->hash2 = HashKey2(key);
  for (bool top : {true, false}) {
    for (uint64_t h : {hint->hash, hint->hash2}) {
      // Prefetch for write: the upsert will dirty one candidate line.
      __builtin_prefetch(&BucketAt(top, h), 1, 3);
    }
  }
  vt::Charge(4 * vt::kPrefetchIssueCost);
  hint->node = top_;  // resize swaps levels; used as a freshness stamp
  hint->valid = true;
}

bool LevelHashing::InsertWithHint(uint64_t key, uint64_t value,
                                  uint64_t* old_value,
                                  const LookupHint& hint) {
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SpinLock> g(mutate_lock_);
  // A resize between the phases swapped the levels (an earlier
  // InsertWithHint of the same batch may have triggered it): the stamp is
  // stale and the prefetched lines are the wrong buckets — take the
  // serial full upsert. The precomputed hashes themselves survive
  // resizes, so the retry loop below never rehashes.
  if (!hint.valid || hint.node != top_) {
    vt::ScopedOverlap serial(1);
    bool updated = false;
    while (!InsertNoResize(key, value, old_value, &updated)) Resize();
    return updated;
  }
  bool updated = false;
  while (!InsertNoResizeHashed(key, value, old_value, &updated, hint.hash,
                               hint.hash2)) {
    Resize();
  }
  return updated;
}

bool LevelHashing::Erase(uint64_t key, uint64_t* old_value) {
  LockGuard<SpinLock> g(mutate_lock_);
  SlotRef ref = FindSlot(key);
  if (ref.bucket == nullptr) return false;
  *old_value = ref.bucket->values[ref.slot];
  std::atomic_ref<uint64_t>(ref.bucket->keys[ref.slot])
      .store(kReservedKey, std::memory_order_release);
  arena_.ctx().PersistFence(&ref.bucket->keys[ref.slot], 8);
  // relaxed: size_ is an approximate stat counter, no ordering.
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool LevelHashing::CompareExchange(uint64_t key, uint64_t expected,
                                   uint64_t desired) {
  vt::Charge(vt::kCpuCas);
  LockGuard<SpinLock> g(mutate_lock_);
  SlotRef ref = FindSlot(key);
  if (ref.bucket == nullptr) return false;
  bool ok = std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
                .compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel);
  if (ok) arena_.ctx().PersistFence(&ref.bucket->values[ref.slot], 8);
  return ok;
}


bool LevelHashing::EraseIfEqual(uint64_t key, uint64_t expected) {
  vt::Charge(vt::kCpuCas);
  LockGuard<SpinLock> g(mutate_lock_);
  SlotRef ref = FindSlot(key);
  if (ref.bucket == nullptr || ref.bucket->values[ref.slot] != expected) {
    return false;
  }
  std::atomic_ref<uint64_t>(ref.bucket->keys[ref.slot])
      .store(kReservedKey, std::memory_order_release);
  arena_.ctx().PersistFence(&ref.bucket->keys[ref.slot], 8);
  // relaxed: size_ is an approximate stat counter, no ordering.
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

}  // namespace index
}  // namespace flatstore
