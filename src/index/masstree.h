// Masstree-style concurrent ordered index (Mao, Kohler, Morris —
// EuroSys'12), the volatile index of FlatStore-M.
//
// With the paper's fixed 8-byte keys, Masstree degenerates to its
// single-layer B+-tree, which is what this implements, keeping the two
// properties that make Masstree fast in DRAM and that the paper's Fig. 8
// comparison (FlatStore-M > FlatStore-FF) rests on:
//
//  * permutation-based leaves: a leaf stores entries unsorted plus a
//    single 64-bit *permuter* word (4-bit slot indexes + count) that
//    encodes the sort order. Inserting writes one free slot and one word —
//    no entry shifting, unlike FAST&FAIR's sorted arrays;
//  * fine-grained synchronization: per-operation cost is charged as a
//    node-local latch, not a tree-global lock. (Host-level thread safety
//    is provided by a readers/writer lock; as everywhere in this repo,
//    reported performance comes from virtual-time charges, so the host
//    lock does not serialize simulated cores.)
//
// DRAM-only by intent (FlatStore-M persists through the OpLog); the
// persistent mode flushes nothing, and kReservedKey stays reserved.

#ifndef FLATSTORE_INDEX_MASSTREE_H_
#define FLATSTORE_INDEX_MASSTREE_H_


#include "common/thread_annotations.h"
#include "index/kv_index.h"
#include "index/node_arena.h"

namespace flatstore {
namespace index {

// Permutation-leaf B+-tree.
class Masstree final : public OrderedKvIndex {
 public:
  explicit Masstree(const PmContext& ctx = {});

  bool Upsert(uint64_t key, uint64_t value,
              uint64_t* old_value) override;
  bool Get(uint64_t key, uint64_t* value) const override;
  void PrefetchGet(uint64_t key, LookupHint* hint) const override;
  bool GetWithHint(uint64_t key, const LookupHint& hint,
                   uint64_t* value) const override;
  void PrefetchInsert(uint64_t key, LookupHint* hint) const override;
  bool InsertWithHint(uint64_t key, uint64_t value, uint64_t* old_value,
                      const LookupHint& hint) override;
  bool Erase(uint64_t key, uint64_t* old_value) override;
  bool CompareExchange(uint64_t key, uint64_t expected,
                       uint64_t desired) override;
  bool EraseIfEqual(uint64_t key, uint64_t expected) override;
  uint64_t Scan(uint64_t start_key, uint64_t count,
                std::vector<KvPair>* out) const override;
  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const override;
  uint64_t Size() const override {
    SharedLockGuard<SharedMutex> g(rw_lock_);
    return size_;
  }
  const char* Name() const override { return "Masstree"; }

 private:
  static constexpr int kLeafSlots = 15;  // Masstree's leaf width
  static constexpr int kInnerCard = 30;

  // 64-bit permuter: bits [0,4) = live count; bits [4+4i, 8+4i) = the slot
  // holding the i-th smallest key; positions >= count list free slots.
  class Permuter {
   public:
    static uint64_t Empty() {
      // Free list enumerates slots 0..14 in order.
      uint64_t p = 0;
      for (uint64_t i = 0; i < kLeafSlots; i++) p |= i << (4 + 4 * i);
      return p;
    }
    static int Count(uint64_t p) { return static_cast<int>(p & 0xF); }
    static int At(uint64_t p, int i) {
      return static_cast<int>((p >> (4 + 4 * i)) & 0xF);
    }
    // Inserts the first free slot at sorted position `pos`; returns the
    // new permuter and the chosen slot.
    static uint64_t InsertAt(uint64_t p, int pos, int* slot);
    // Removes sorted position `pos`, appending its slot to the free list.
    static uint64_t RemoveAt(uint64_t p, int pos);
  };

  struct Leaf {
    uint64_t permutation;
    uint64_t keys[kLeafSlots];
    uint64_t values[kLeafSlots];
    Leaf* next;
  };

  struct Inner {
    uint32_t count;
    void* leftmost;
    struct Entry {
      uint64_t key;
      void* child;
    } entries[kInnerCard];
  };

  Leaf* NewLeaf();
  Inner* NewInner();

  // Descends to the leaf for `key`, filling `path` with inner nodes.
  Leaf* Descend(uint64_t key, std::vector<Inner*>* path) const
      REQUIRES_SHARED(rw_lock_);

  // Sorted position of `key` in `leaf`; sets `*found` if the key exists.
  static int LeafPosition(const Leaf* l, uint64_t key, bool* found);

  Leaf* SplitLeaf(Leaf* leaf, uint64_t* up_key);
  void InsertInner(uint64_t up_key, void* right,
                   const std::vector<Inner*>& path) REQUIRES(rw_lock_);

  // The Upsert loop (descend, in-place / leaf insert / split) with the
  // write lock already held. Shared by Upsert and InsertWithHint's
  // full-descend fallback (a hinted leaf with no room must split, which
  // needs the inner path the hint does not carry).
  bool UpsertLocked(uint64_t key, uint64_t value, uint64_t* old_value)
      REQUIRES(rw_lock_);

  NodeArena arena_;
  mutable SharedMutex rw_lock_;
  void* root_ GUARDED_BY(rw_lock_);
  uint32_t height_ GUARDED_BY(rw_lock_) = 1;  // 1 = root is a leaf
  uint64_t size_ GUARDED_BY(rw_lock_) = 0;
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_MASSTREE_H_
