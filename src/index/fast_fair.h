// FAST&FAIR persistent B+-tree (Hwang, Kim, Won, Nam — FAST'18).
//
// The baseline whose behaviour motivates the whole paper (§2.2/Fig. 1(a)):
// a sorted-array B+-tree that avoids logging by performing Failure-Atomic
// ShifTs (every shifted entry is an 8-byte atomic store, flushed cacheline
// by cacheline) and tolerating transient inconsistency for readers
// (FAIR sibling links). A single Put may therefore flush many lines —
// shifting half a node, splitting nodes, updating parents — which is the
// write amplification FlatStore's OpLog eliminates.
//
// Modes:
//  * persistent — the FAST&FAIR baseline engine;
//  * volatile  — the index behind FlatStore-FF (paper §5.1 implements
//    FlatStore-FF by "placing FAST&FAIR in DRAM as the volatile index").
//
// Simplifications vs. the original, documented per DESIGN.md §1: deletes
// use lazy removal without node merging (the evaluation workloads are
// Put/Get dominated), and host-level synchronization is a readers/writer
// lock rather than the original's lock-free reads — virtual-time costs,
// not host concurrency, determine reported performance.

#ifndef FLATSTORE_INDEX_FAST_FAIR_H_
#define FLATSTORE_INDEX_FAST_FAIR_H_


#include "common/thread_annotations.h"
#include "index/kv_index.h"
#include "index/node_arena.h"

namespace flatstore {
namespace index {

// Sorted-node B+-tree with FAST-style shifting writes.
class FastFair final : public OrderedKvIndex {
 public:
  explicit FastFair(const PmContext& ctx);

  bool Upsert(uint64_t key, uint64_t value,
              uint64_t* old_value) override;
  bool Get(uint64_t key, uint64_t* value) const override;
  void PrefetchGet(uint64_t key, LookupHint* hint) const override;
  bool GetWithHint(uint64_t key, const LookupHint& hint,
                   uint64_t* value) const override;
  void PrefetchInsert(uint64_t key, LookupHint* hint) const override;
  bool InsertWithHint(uint64_t key, uint64_t value, uint64_t* old_value,
                      const LookupHint& hint) override;
  bool Erase(uint64_t key, uint64_t* old_value) override;
  bool CompareExchange(uint64_t key, uint64_t expected,
                       uint64_t desired) override;
  bool EraseIfEqual(uint64_t key, uint64_t expected) override;
  uint64_t Scan(uint64_t start_key, uint64_t count,
                std::vector<KvPair>* out) const override;
  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const override;
  uint64_t Size() const override {
    SharedLockGuard<SharedMutex> g(rw_lock_);
    return size_;
  }
  const char* Name() const override { return "FAST&FAIR"; }

  // Tree height (tests).
  int Height() const;

 private:
  // 512 B nodes, as in the original implementation.
  static constexpr int kCard = 30;

  struct Node {
    uint32_t is_leaf;
    uint32_t count;
    Node* sibling;    // right sibling (FAIR links, both levels)
    Node* leftmost;   // inner: child for keys < entries[0].key
    uint64_t pad;     // entries start at a 32 B header => 512 B node
    struct Entry {
      uint64_t key;
      uint64_t value;  // leaf: value; inner: Node* child
    } entries[kCard];
  };
  static_assert(sizeof(Node) == 32 + 16 * kCard);

  Node* NewNode(bool leaf);
  Node* FindLeaf(uint64_t key) const REQUIRES_SHARED(rw_lock_);
  static int LowerBound(const Node* n, uint64_t key);

  // Inserts into a non-full sorted node with FAST shifting and persists
  // the shifted region.
  void InsertInNode(Node* n, uint64_t key, uint64_t value);

  // Splits `n`, returns the new right sibling; `*up_key` receives the
  // separator to push into the parent.
  Node* SplitNode(Node* n, uint64_t* up_key);

  // Recursive insert; returns the new sibling + separator when the child
  // split propagates.
  struct SplitResult {
    Node* right = nullptr;
    uint64_t up_key = 0;
  };
  SplitResult InsertRecursive(Node* n, uint64_t key, uint64_t value,
                              uint64_t* old_value, bool* updated)
      REQUIRES(rw_lock_);

  // Upsert body (recursive insert + root growth) with the write lock
  // already held. Shared by Upsert and InsertWithHint's fallback (a
  // hinted leaf that must split needs the root path the hint lacks).
  bool UpsertLocked(uint64_t key, uint64_t value, uint64_t* old_value)
      REQUIRES(rw_lock_);

  NodeArena arena_;
  mutable SharedMutex rw_lock_;
  Node* root_ GUARDED_BY(rw_lock_);
  uint64_t size_ GUARDED_BY(rw_lock_) = 0;
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_FAST_FAIR_H_
