// CCEH — Cacheline-Conscious Extendible Hashing (Nam et al., FAST'19).
//
// The three-level structure from Table 1 of the FlatStore paper: a
// directory of segment pointers (indexed by the hash MSBs), 16 KB segments
// of 256 cacheline-sized buckets (indexed by hash LSBs), 4 slots per
// bucket, with bounded linear probing across adjacent buckets. Segments
// split lazily (local depth) and the directory doubles (global depth) when
// a splitting segment is at global depth.
//
// Used two ways (paper §4.1 / §5):
//  * volatile, one instance per server core — FlatStore-H's index;
//  * persistent — the "CCEH" baseline engine, where every slot update,
//    in-place value overwrite and split rehash is flushed, producing the
//    in-place cacheline re-flush traffic §2.3 penalizes under skew.
//
// Simplification vs. the original: the directory lives in DRAM in both
// modes (directory persistence adds a constant, tiny flush count per
// split; splits are rare in the steady-state benchmarks, which pre-size
// the table exactly like the paper does).

#ifndef FLATSTORE_INDEX_CCEH_H_
#define FLATSTORE_INDEX_CCEH_H_

#include <atomic>
#include <vector>

#include "common/spin_lock.h"
#include "index/kv_index.h"
#include "index/node_arena.h"

namespace flatstore {
namespace index {

// Extendible hash index. Single-writer per instance; Get() and
// CompareExchange() may run concurrently with the writer's value updates
// (the log cleaner's relocation path), which is the concurrency FlatStore-H
// actually needs.
class Cceh final : public KvIndex {
 public:
  // `initial_depth`: log2 of the initial number of segments. Size the
  // table with ~(keys / (kSegmentBuckets * kSlots * 0.7)) segments to
  // avoid splits during measurement, as the paper's setup does.
  explicit Cceh(const PmContext& ctx, uint32_t initial_depth = 4);

  bool Upsert(uint64_t key, uint64_t value,
              uint64_t* old_value) override;
  bool Get(uint64_t key, uint64_t* value) const override;
  void PrefetchGet(uint64_t key, LookupHint* hint) const override;
  bool GetWithHint(uint64_t key, const LookupHint& hint,
                   uint64_t* value) const override;
  void PrefetchInsert(uint64_t key, LookupHint* hint) const override;
  bool InsertWithHint(uint64_t key, uint64_t value, uint64_t* old_value,
                      const LookupHint& hint) override;
  bool Erase(uint64_t key, uint64_t* old_value) override;
  bool CompareExchange(uint64_t key, uint64_t expected,
                       uint64_t desired) override;
  bool EraseIfEqual(uint64_t key, uint64_t expected) override;
  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const override;
  uint64_t Size() const override {
    // relaxed: size_ is an approximate stat counter, no ordering.
    return size_.load(std::memory_order_relaxed);
  }
  const char* Name() const override { return "CCEH"; }

  // Structure introspection (tests).
  uint32_t global_depth() const { return global_depth_; }
  uint64_t segment_count() const;

 private:
  static constexpr int kSlots = 4;            // slots per bucket
  static constexpr int kProbeBuckets = 4;     // linear probing distance
  // 255 buckets keep sizeof(Segment) within the 16 KB size class.
  static constexpr uint32_t kSegmentBuckets = 255;

  // One cacheline: 4 key/value slots.
  struct alignas(64) Bucket {
    uint64_t keys[kSlots];
    uint64_t values[kSlots];
  };
  static_assert(sizeof(Bucket) == 64);

  struct Segment {
    uint32_t local_depth;
    uint32_t pad;
    Bucket buckets[kSegmentBuckets];
  };

  Segment* NewSegment(uint32_t local_depth);
  Segment* SegmentFor(uint64_t hash) const {
    return directory_[hash >> (64 - global_depth_)];
  }
  // Splits the segment containing `hash` and redistributes its slots,
  // cascading into further splits when a probe window overflows.
  void Split(uint64_t hash);

  // Places (key, value) in `seg`'s probe window; false when full.
  bool TryPlace(Segment* seg, uint64_t hash, uint64_t key, uint64_t value);

  // Finds the slot holding `key`; returns {bucket, slot} or {null, 0}.
  struct SlotRef {
    Bucket* bucket = nullptr;
    int slot = 0;
  };
  SlotRef FindSlot(uint64_t key, uint64_t hash) const;

  // The Upsert loop body with the hash already computed; caller holds
  // mutate_lock_. Shared by Upsert and InsertWithHint.
  bool UpsertLocked(uint64_t key, uint64_t value, uint64_t* old_value,
                    uint64_t hash);

  NodeArena arena_;
  uint32_t global_depth_;
  std::vector<Segment*> directory_;
  std::atomic<uint64_t> size_{0};
  SpinLock mutate_lock_;  // Insert/Delete/CAS vs. cleaner CAS
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_CCEH_H_
