// Node storage for index structures, switching between DRAM and PM.
//
// In volatile mode nodes come from the heap and are retained until the
// arena is destroyed (merged/split-away nodes may still be referenced by
// concurrent optimistic readers, so they are never recycled — an epoch-free
// reclamation scheme adequate for index lifetimes). In persistent mode
// nodes come from the lazy-persist allocator and may be freed eagerly,
// since the persistent baselines are single-writer structures.

#ifndef FLATSTORE_INDEX_NODE_ARENA_H_
#define FLATSTORE_INDEX_NODE_ARENA_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "index/kv_index.h"

namespace flatstore {
namespace index {

// Allocates zero-initialized node memory per the PmContext mode.
class NodeArena {
 public:
  explicit NodeArena(const PmContext& ctx) : ctx_(ctx) {}
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  // Returns zeroed storage of `size` bytes.
  void* Alloc(uint64_t size) {
    if (ctx_.persistent()) {
      uint64_t off = ctx_.alloc->Alloc(ctx_.core, size);
      FLATSTORE_CHECK_NE(off, 0u) << "index node allocation failed";
      void* p = ctx_.pool->At(off);
      // fs-lint: pm-write(fresh index-node zero-fill; each persistent-index baseline persists node contents at its own commit points)
      std::memset(p, 0, size);
      return p;
    }
    LockGuard<SpinLock> g(lock_);
    // Index nodes declare alignas(64) (cacheline-sized buckets); plain
    // new char[] only guarantees 16, so over-allocate and round up.
    blocks_.push_back(std::make_unique<char[]>(size + 63));
    char* raw = blocks_.back().get();
    char* aligned =
        raw + ((64 - (reinterpret_cast<uintptr_t>(raw) & 63)) & 63);
    std::memset(aligned, 0, size);
    return aligned;
  }

  // Releases a node. No-op in volatile mode (see header comment).
  void Free(void* p) {
    if (ctx_.persistent()) ctx_.alloc->Free(ctx_.pool->OffsetOf(p));
  }

  const PmContext& ctx() const { return ctx_; }

 private:
  PmContext ctx_;
  SpinLock lock_;
  std::vector<std::unique_ptr<char[]>> blocks_ GUARDED_BY(lock_);
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_NODE_ARENA_H_
