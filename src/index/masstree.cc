#include "index/masstree.h"

#include <atomic>
#include <cstring>

#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace index {

uint64_t Masstree::Permuter::InsertAt(uint64_t p, int pos, int* slot) {
  const int count = Count(p);
  *slot = At(p, count);  // first free slot
  // Rebuild the index list with *slot spliced in at `pos`.
  uint64_t q = static_cast<uint64_t>(count + 1);
  int src = 0;
  for (int i = 0; i < kLeafSlots; i++) {
    uint64_t s;
    if (i == pos) {
      s = static_cast<uint64_t>(*slot);
    } else {
      if (src == count) src++;  // skip the free slot we consumed
      s = static_cast<uint64_t>(At(p, src));
      src++;
    }
    q |= s << (4 + 4 * i);
  }
  return q;
}

uint64_t Masstree::Permuter::RemoveAt(uint64_t p, int pos) {
  const int count = Count(p);
  const uint64_t freed = static_cast<uint64_t>(At(p, pos));
  uint64_t q = static_cast<uint64_t>(count - 1);
  int dst = 0;
  for (int i = 0; i < kLeafSlots; i++) {
    if (i == pos) continue;
    q |= static_cast<uint64_t>(At(p, i)) << (4 + 4 * dst);
    dst++;
  }
  // Freed slot goes to the head of the free region (position count-1).
  q |= freed << (4 + 4 * (kLeafSlots - 1));
  return q;
}

Masstree::Masstree(const PmContext& ctx) : arena_(ctx) {
  root_ = NewLeaf();
}

Masstree::Leaf* Masstree::NewLeaf() {
  auto* l = static_cast<Leaf*>(arena_.Alloc(sizeof(Leaf)));
  l->permutation = Permuter::Empty();
  l->next = nullptr;
  return l;
}

Masstree::Inner* Masstree::NewInner() {
  return static_cast<Inner*>(arena_.Alloc(sizeof(Inner)));
}

Masstree::Leaf* Masstree::Descend(uint64_t key,
                                  std::vector<Inner*>* path) const {
  void* n = root_;
  for (uint32_t h = height_; h > 1; h--) {
    // Amortized under a MultiGet overlap window (descents of independent
    // keys are independent pointer chases); serial cost otherwise.
    vt::ChargeMiss(vt::kCpuCacheMiss);
    Inner* inner = static_cast<Inner*>(n);
    if (path != nullptr) path->push_back(inner);
    int i = 0;
    while (i < static_cast<int>(inner->count) && inner->entries[i].key <= key) {
      vt::Charge(vt::kCpuSlotProbe);
      i++;
    }
    n = i == 0 ? inner->leftmost : inner->entries[i - 1].child;
  }
  vt::ChargeMiss(vt::kCpuCacheMiss);
  return static_cast<Leaf*>(n);
}

int Masstree::LeafPosition(const Leaf* l, uint64_t key, bool* found) {
  const uint64_t p = l->permutation;
  const int count = Permuter::Count(p);
  // Binary search over the permuted order (Masstree leaves are searched
  // through the permuter, so lookup is log despite unsorted storage).
  int lo = 0, hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    vt::Charge(vt::kCpuSlotProbe);
    if (l->keys[Permuter::At(p, mid)] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = lo < count && l->keys[Permuter::At(p, lo)] == key;
  return lo;
}

Masstree::Leaf* Masstree::SplitLeaf(Leaf* leaf, uint64_t* up_key) {
  Leaf* right = NewLeaf();
  const uint64_t p = leaf->permutation;
  const int count = Permuter::Count(p);
  const int half = count / 2;

  // Move the upper half into the fresh leaf (slots 0..), fully sorted.
  uint64_t rp = static_cast<uint64_t>(count - half);
  for (int i = half; i < count; i++) {
    int src = Permuter::At(p, i);
    int dst = i - half;
    right->keys[dst] = leaf->keys[src];
    right->values[dst] = leaf->values[src];
    rp |= static_cast<uint64_t>(dst) << (4 + 4 * dst);
  }
  // Free region of the right permuter.
  for (int i = count - half; i < kLeafSlots; i++) {
    rp |= static_cast<uint64_t>(i) << (4 + 4 * i);
  }
  right->permutation = rp;
  vt::Charge(vt::CostMemcpy(static_cast<uint64_t>(count - half) * 16));

  // Shrink the left leaf: keep the lower half, free the moved slots.
  uint64_t lp = static_cast<uint64_t>(half);
  int w = 0;
  bool used[kLeafSlots] = {};
  for (int i = 0; i < half; i++) {
    int s = Permuter::At(p, i);
    lp |= static_cast<uint64_t>(s) << (4 + 4 * w);
    used[s] = true;
    w++;
  }
  for (int s = 0; s < kLeafSlots; s++) {
    if (!used[s]) {
      lp |= static_cast<uint64_t>(s) << (4 + 4 * w);
      w++;
    }
  }
  right->next = leaf->next;
  leaf->next = right;
  leaf->permutation = lp;  // single-word commit
  *up_key = right->keys[Permuter::At(rp, 0)];
  return right;
}

void Masstree::InsertInner(uint64_t up_key, void* right,
                           const std::vector<Inner*>& path) {
  void* carry_child = right;
  uint64_t carry_key = up_key;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Inner* n = *it;
    int pos = 0;
    while (pos < static_cast<int>(n->count) && n->entries[pos].key < carry_key) {
      pos++;
    }
    if (static_cast<int>(n->count) < kInnerCard) {
      for (int i = static_cast<int>(n->count); i > pos; i--) {
        n->entries[i] = n->entries[i - 1];
      }
      n->entries[pos] = {carry_key, carry_child};
      n->count++;
      return;
    }
    Inner* sib = NewInner();
    const int half = kInnerCard / 2;
    uint64_t mid_key = n->entries[half].key;
    sib->leftmost = n->entries[half].child;
    sib->count = static_cast<uint32_t>(kInnerCard - half - 1);
    std::memcpy(sib->entries, &n->entries[half + 1],
                sizeof(Inner::Entry) * sib->count);
    n->count = static_cast<uint32_t>(half);
    Inner* target = carry_key < mid_key ? n : sib;
    int p = 0;
    while (p < static_cast<int>(target->count) &&
           target->entries[p].key < carry_key) {
      p++;
    }
    for (int i = static_cast<int>(target->count); i > p; i--) {
      target->entries[i] = target->entries[i - 1];
    }
    target->entries[p] = {carry_key, carry_child};
    target->count++;
    carry_key = mid_key;
    carry_child = sib;
  }
  Inner* new_root = NewInner();
  new_root->leftmost = root_;
  new_root->entries[0] = {carry_key, carry_child};
  new_root->count = 1;
  root_ = new_root;
  height_++;
}

bool Masstree::Upsert(uint64_t key, uint64_t value, uint64_t* old_value) {
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);  // leaf latch (fine grained in the original)
  return UpsertLocked(key, value, old_value);
}

bool Masstree::UpsertLocked(uint64_t key, uint64_t value,
                            uint64_t* old_value) {
  while (true) {
    std::vector<Inner*> path;
    Leaf* leaf = Descend(key, &path);
    bool found;
    int pos = LeafPosition(leaf, key, &found);
    if (found) {
      int slot = Permuter::At(leaf->permutation, pos);
      *old_value = leaf->values[slot];
      std::atomic_ref<uint64_t>(leaf->values[slot])
          .store(value, std::memory_order_release);
      return true;
    }
    if (Permuter::Count(leaf->permutation) < kLeafSlots) {
      int slot;
      uint64_t np = Permuter::InsertAt(leaf->permutation, pos, &slot);
      leaf->keys[slot] = key;
      leaf->values[slot] = value;
      // Single-word publication — the "no shifting" property.
      std::atomic_ref<uint64_t>(leaf->permutation)
          .store(np, std::memory_order_release);
      vt::Charge(2 * vt::kCpuSlotProbe);
      size_++;
      return false;  // no previous value
    }
    uint64_t up;
    Leaf* right = SplitLeaf(leaf, &up);
    InsertInner(up, right, path);
  }
}

bool Masstree::Get(uint64_t key, uint64_t* value) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Leaf* leaf = Descend(key, nullptr);
  bool found;
  int pos = LeafPosition(leaf, key, &found);
  if (!found) return false;
  int slot = Permuter::At(leaf->permutation, pos);
  *value = std::atomic_ref<const uint64_t>(leaf->values[slot])
               .load(std::memory_order_acquire);
  return true;
}

void Masstree::PrefetchGet(uint64_t key, LookupHint* hint) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Leaf* leaf = Descend(key, nullptr);
  // Pull the whole 256 B leaf (permuter word + key/value arrays) so the
  // phase-B binary search touches warm lines only.
  const char* base = reinterpret_cast<const char*>(leaf);
  for (uint64_t off = 0; off < sizeof(Leaf); off += 64) {
    __builtin_prefetch(base + off, 0, 3);
  }
  vt::Charge((sizeof(Leaf) / 64) * vt::kPrefetchIssueCost);
  hint->node = leaf;
  hint->valid = true;
}

bool Masstree::GetWithHint(uint64_t key, const LookupHint& hint,
                           uint64_t* value) const {
  if (!hint.valid) return KvIndex::GetWithHint(key, hint, value);
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Leaf* leaf = static_cast<const Leaf*>(hint.node);
  // A split between the phases moves the upper half of the hinted leaf to
  // a fresh right sibling; keys never move left (no merges) and leaves are
  // never freed, so walking the sibling chain re-finds them. Each hop is
  // an un-prefetched line, charged at full serial price.
  while (true) {
    const uint64_t p = leaf->permutation;
    const int count = Permuter::Count(p);
    if (count > 0 && leaf->next != nullptr &&
        key > leaf->keys[Permuter::At(p, count - 1)]) {
      leaf = leaf->next;
      vt::Charge(vt::kCpuCacheMiss);
      continue;
    }
    break;
  }
  bool found;
  int pos = LeafPosition(leaf, key, &found);
  if (!found) return false;
  int slot = Permuter::At(leaf->permutation, pos);
  *value = std::atomic_ref<const uint64_t>(leaf->values[slot])
               .load(std::memory_order_acquire);
  return true;
}

void Masstree::PrefetchInsert(uint64_t key, LookupHint* hint) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  const Leaf* leaf = Descend(key, nullptr);
  // Pull the whole 256 B leaf for write: the upsert dirties the permuter
  // word plus one key/value slot, and the phase-B search reads the rest.
  const char* base = reinterpret_cast<const char*>(leaf);
  for (uint64_t off = 0; off < sizeof(Leaf); off += 64) {
    __builtin_prefetch(base + off, 1, 3);
  }
  vt::Charge((sizeof(Leaf) / 64) * vt::kPrefetchIssueCost);
  hint->node = leaf;
  hint->valid = true;
}

bool Masstree::InsertWithHint(uint64_t key, uint64_t value,
                              uint64_t* old_value, const LookupHint& hint) {
  if (!hint.valid) return KvIndex::InsertWithHint(key, value, old_value, hint);
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);  // leaf latch
  // Freshness discipline, stricter than GetWithHint's: a split between
  // the phases (an earlier insert of the same batch) moved keys to a
  // right sibling. For a *write* the leaf must be exactly the one a fresh
  // descend would pick — placing the key one leaf off would hide it from
  // future lookups — so the walk only hops when key >= min(next) (which
  // proves the key is at or right of the sibling's separator) and only
  // settles when key <= max(leaf) (which proves this leaf still covers
  // it). The ambiguous gap between a leaf's max and its sibling's min,
  // and drained leaves with no keys to compare, take the full descend.
  Leaf* leaf = static_cast<Leaf*>(const_cast<void*>(hint.node));
  while (true) {
    const uint64_t p = leaf->permutation;
    const int count = Permuter::Count(p);
    if (count == 0) break;  // no fence keys to reason with: stale
    if (key <= leaf->keys[Permuter::At(p, count - 1)]) {
      // Provably this leaf: keys never move left, so the hinted leaf's
      // low bound still covers `key`, and key <= max rules out siblings.
      bool found;
      int pos = LeafPosition(leaf, key, &found);
      if (found) {
        int slot = Permuter::At(leaf->permutation, pos);
        *old_value = leaf->values[slot];
        std::atomic_ref<uint64_t>(leaf->values[slot])
            .store(value, std::memory_order_release);
        return true;
      }
      if (count < kLeafSlots) {
        int slot;
        uint64_t np = Permuter::InsertAt(leaf->permutation, pos, &slot);
        leaf->keys[slot] = key;
        leaf->values[slot] = value;
        // Single-word publication — the "no shifting" property.
        std::atomic_ref<uint64_t>(leaf->permutation)
            .store(np, std::memory_order_release);
        vt::Charge(2 * vt::kCpuSlotProbe);
        size_++;
        return false;  // no previous value
      }
      break;  // full: splitting needs the inner path the hint lacks
    }
    Leaf* next = leaf->next;
    if (next == nullptr) {
      // Rightmost leaf covers everything above its max.
      bool found;
      int pos = LeafPosition(leaf, key, &found);
      FLATSTORE_DCHECK(!found);
      if (count < kLeafSlots) {
        int slot;
        uint64_t np = Permuter::InsertAt(leaf->permutation, pos, &slot);
        leaf->keys[slot] = key;
        leaf->values[slot] = value;
        std::atomic_ref<uint64_t>(leaf->permutation)
            .store(np, std::memory_order_release);
        vt::Charge(2 * vt::kCpuSlotProbe);
        size_++;
        return false;
      }
      break;
    }
    const uint64_t np = next->permutation;
    vt::Charge(vt::kCpuCacheMiss);  // un-prefetched sibling line
    if (Permuter::Count(np) == 0 ||
        key < next->keys[Permuter::At(np, 0)]) {
      break;  // gap between max(leaf) and min(next): placement ambiguous
    }
    leaf = next;
  }
  // Stale / ambiguous / needs-split: the full serial upsert.
  vt::ScopedOverlap serial(1);
  return UpsertLocked(key, value, old_value);
}

bool Masstree::Erase(uint64_t key, uint64_t* old_value) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Leaf* leaf = Descend(key, nullptr);
  bool found;
  int pos = LeafPosition(leaf, key, &found);
  if (!found) return false;
  *old_value = leaf->values[Permuter::At(leaf->permutation, pos)];
  std::atomic_ref<uint64_t>(leaf->permutation)
      .store(Permuter::RemoveAt(leaf->permutation, pos),
             std::memory_order_release);
  size_--;
  return true;
}

bool Masstree::CompareExchange(uint64_t key, uint64_t expected,
                               uint64_t desired) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Leaf* leaf = Descend(key, nullptr);
  bool found;
  int pos = LeafPosition(leaf, key, &found);
  if (!found) return false;
  int slot = Permuter::At(leaf->permutation, pos);
  return std::atomic_ref<uint64_t>(leaf->values[slot])
      .compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
}

void Masstree::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  for (const Leaf* leaf = Descend(0, nullptr); leaf != nullptr;
       leaf = leaf->next) {
    const uint64_t p = leaf->permutation;
    for (int i = 0; i < Permuter::Count(p); i++) {
      int slot = Permuter::At(p, i);
      fn(leaf->keys[slot], leaf->values[slot]);
    }
  }
}

uint64_t Masstree::Scan(uint64_t start_key, uint64_t count,
                        std::vector<KvPair>* out) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  uint64_t n = 0;
  const Leaf* leaf = Descend(start_key, nullptr);
  bool found;
  int pos = LeafPosition(leaf, start_key, &found);
  while (leaf != nullptr && n < count) {
    vt::Charge(vt::kCpuCacheMiss);
    const uint64_t p = leaf->permutation;
    for (; pos < Permuter::Count(p) && n < count; pos++) {
      int slot = Permuter::At(p, pos);
      out->push_back({leaf->keys[slot], leaf->values[slot]});
      n++;
      vt::Charge(vt::kCpuSlotProbe);
    }
    leaf = leaf->next;
    pos = 0;
  }
  return n;
}


bool Masstree::EraseIfEqual(uint64_t key, uint64_t expected) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Leaf* leaf = Descend(key, nullptr);
  bool found;
  int pos = LeafPosition(leaf, key, &found);
  if (!found) return false;
  int slot = Permuter::At(leaf->permutation, pos);
  if (leaf->values[slot] != expected) return false;
  std::atomic_ref<uint64_t>(leaf->permutation)
      .store(Permuter::RemoveAt(leaf->permutation, pos),
             std::memory_order_release);
  size_--;
  return true;
}

}  // namespace index
}  // namespace flatstore
