// FPTree (Oukid et al., SIGMOD'16) — hybrid SCM-DRAM B+-tree.
//
// Inner nodes live in DRAM (rebuilt on recovery in the original); leaf
// nodes live in PM and are *unsorted*, with a one-byte fingerprint array
// for fast probing and a validity bitmap whose single-word update is the
// atomic commit point. Updates are out-of-place within the leaf: write the
// new entry into a free slot, persist it, then flip old+new bits in the
// bitmap with one 8-byte store and persist that word.
//
// FPTree is not open source; like the FlatStore authors ("we implement it
// based on STX B+-Tree"), this is a from-scratch re-implementation.
//
// Used persistent-only (it is a baseline; FlatStore never uses it as a
// volatile index). The volatile mode still works for tests.

#ifndef FLATSTORE_INDEX_FPTREE_H_
#define FLATSTORE_INDEX_FPTREE_H_


#include "common/thread_annotations.h"
#include "index/kv_index.h"
#include "index/node_arena.h"

namespace flatstore {
namespace index {

// Hybrid B+-tree: volatile sorted inner nodes, persistent unsorted
// fingerprinted leaves.
class FpTree final : public OrderedKvIndex {
 public:
  explicit FpTree(const PmContext& ctx);

  bool Upsert(uint64_t key, uint64_t value,
              uint64_t* old_value) override;
  bool Get(uint64_t key, uint64_t* value) const override;
  bool Erase(uint64_t key, uint64_t* old_value) override;
  bool CompareExchange(uint64_t key, uint64_t expected,
                       uint64_t desired) override;
  bool EraseIfEqual(uint64_t key, uint64_t expected) override;
  uint64_t Scan(uint64_t start_key, uint64_t count,
                std::vector<KvPair>* out) const override;
  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const override;
  uint64_t Size() const override {
    SharedLockGuard<SharedMutex> g(rw_lock_);
    return size_;
  }
  const char* Name() const override { return "FPTree"; }

 private:
  static constexpr int kLeafSlots = 32;
  static constexpr int kInnerCard = 30;

  // PM-resident leaf. The bitmap word + fingerprints share the header
  // cacheline, so a commit flushes exactly one line after the entry line.
  struct Leaf {
    uint64_t bitmap;               // bit i: slot i valid
    Leaf* next;                    // leaf chain (ordered)
    uint8_t fps[kLeafSlots];       // fingerprints (0 = unused hint only)
    uint8_t pad[16];
    struct Entry {
      uint64_t key;
      uint64_t value;
    } entries[kLeafSlots];
  };
  static_assert(sizeof(Leaf) % 64 == 0);

  // DRAM-resident sorted inner node (never flushed, even in persistent
  // mode — that is FPTree's design point).
  struct Inner {
    uint32_t level;  // 1 = children are leaves
    uint32_t count;
    void* leftmost;
    struct Entry {
      uint64_t key;
      void* child;
    } entries[kInnerCard];
  };

  Leaf* NewLeaf();
  Leaf* FindLeaf(uint64_t key) const REQUIRES_SHARED(rw_lock_);
  static int FindInLeaf(const Leaf* l, uint64_t key, uint8_t fp);
  static int FreeSlot(const Leaf* l);

  // Splits `leaf` at its median key; returns the new right leaf and the
  // separator through `*up_key`.
  Leaf* SplitLeaf(Leaf* leaf, uint64_t* up_key);

  // Inserts (separator, right_child) into the inner tree above a leaf
  // split; grows the tree as needed.
  void InsertInner(uint64_t up_key, void* right,
                   const std::vector<Inner*>& path) REQUIRES(rw_lock_);

  NodeArena arena_;
  std::vector<std::unique_ptr<Inner>> inner_pool_;  // DRAM inner nodes
  Inner* NewInner(uint32_t level);

  mutable SharedMutex rw_lock_;
  // Inner* or Leaf* (leaf when height == 1).
  void* root_ GUARDED_BY(rw_lock_);
  uint32_t height_ GUARDED_BY(rw_lock_);  // 1 = root is a leaf
  uint64_t size_ GUARDED_BY(rw_lock_) = 0;
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_FPTREE_H_
