// Level Hashing (Zuo, Hua, Wu — OSDI'18), as used in the paper's Table 1:
// a two-level hash scheme. The top level has N buckets, the bottom level
// N/2; every key hashes to two candidate buckets per level (two hash
// functions), four candidates total. When all are full, one resident item
// is *moved* to its alternate bucket to make room (the "rehash related
// entries on conflict" the FlatStore paper points at); when movement also
// fails, the table resizes: a new 2N-bucket level becomes the top, the old
// top becomes the bottom, and the old bottom's items are rehashed.
//
// Simplification vs. the original: slot occupancy is encoded by a reserved
// key sentinel instead of the separate token bitmap, keeping each 4-slot
// bucket exactly one cacheline; the per-insert flush count (one line) is
// unchanged.

#ifndef FLATSTORE_INDEX_LEVEL_HASHING_H_
#define FLATSTORE_INDEX_LEVEL_HASHING_H_

#include <atomic>
#include <vector>

#include "common/spin_lock.h"
#include "index/kv_index.h"
#include "index/node_arena.h"

namespace flatstore {
namespace index {

// Two-level hash index. Same concurrency contract as Cceh: single writer,
// concurrent Get/CompareExchange.
class LevelHashing final : public KvIndex {
 public:
  // `initial_level_bits`: log2 of the initial top-level bucket count.
  explicit LevelHashing(const PmContext& ctx, uint32_t initial_level_bits = 8);

  bool Upsert(uint64_t key, uint64_t value,
              uint64_t* old_value) override;
  bool Get(uint64_t key, uint64_t* value) const override;
  void PrefetchGet(uint64_t key, LookupHint* hint) const override;
  bool GetWithHint(uint64_t key, const LookupHint& hint,
                   uint64_t* value) const override;
  void PrefetchInsert(uint64_t key, LookupHint* hint) const override;
  bool InsertWithHint(uint64_t key, uint64_t value, uint64_t* old_value,
                      const LookupHint& hint) override;
  bool Erase(uint64_t key, uint64_t* old_value) override;
  bool CompareExchange(uint64_t key, uint64_t expected,
                       uint64_t desired) override;
  bool EraseIfEqual(uint64_t key, uint64_t expected) override;
  void ForEach(
      const std::function<void(uint64_t, uint64_t)>& fn) const override;
  uint64_t Size() const override {
    // relaxed: size_ is an approximate stat counter, no ordering.
    return size_.load(std::memory_order_relaxed);
  }
  const char* Name() const override { return "Level-Hashing"; }

  // Number of resizes performed (tests / bench sanity).
  uint64_t resizes() const { return resizes_; }
  uint64_t top_buckets() const { return 1ull << level_bits_; }

 private:
  static constexpr int kSlots = 4;

  struct alignas(64) Bucket {
    uint64_t keys[kSlots];
    uint64_t values[kSlots];
  };
  static_assert(sizeof(Bucket) == 64);

  // A level is a bucket array of 2^bits (top) or 2^(bits-1) (bottom).
  Bucket* NewLevel(uint64_t buckets);

  struct SlotRef {
    Bucket* bucket = nullptr;
    int slot = 0;
  };
  SlotRef FindSlot(uint64_t key) const;
  // Probe with precomputed hashes (two-phase lookups hash in phase A).
  SlotRef FindSlotHashed(uint64_t key, uint64_t h1, uint64_t h2) const;

  // Bucket addressed by hash `h` in the given level.
  Bucket& BucketAt(bool top, uint64_t h) const;

  // Tries to place (key, value) in `bucket`; persists and returns true on
  // success.
  bool TryInsert(Bucket& bucket, uint64_t key, uint64_t value);

  // Tries to relocate one item out of `bucket` (level `top`) to its
  // alternate bucket in the same level; returns true if a slot was freed.
  bool TryMove(Bucket& bucket, bool top);

  // Candidate buckets of `key` in the given level.
  Bucket& Cand(bool top, int which, uint64_t key) const;

  // Grows the table (new top = 2x buckets, old top demoted to bottom).
  void Resize();

  // Inserts without ever resizing; used during Resize's rehash. Reports
  // an in-place update (and the previous value) through the out-params.
  bool InsertNoResize(uint64_t key, uint64_t value, uint64_t* old_value,
                      bool* updated);
  // Same, with both hashes precomputed (two-phase inserts hash in phase
  // A). Hashes stay valid across resizes, so InsertWithHint can loop on
  // it without rehashing.
  bool InsertNoResizeHashed(uint64_t key, uint64_t value, uint64_t* old_value,
                            bool* updated, uint64_t h1, uint64_t h2);

  NodeArena arena_;
  uint32_t level_bits_;
  Bucket* top_;
  Bucket* bottom_;
  std::atomic<uint64_t> size_{0};
  uint64_t resizes_ = 0;
  SpinLock mutate_lock_;
};

}  // namespace index
}  // namespace flatstore

#endif  // FLATSTORE_INDEX_LEVEL_HASHING_H_
