#include "index/cceh.h"

#include <cstring>

#include "common/hash.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace index {

namespace {
// Buckets are selected from the hash LSBs, segments from the MSBs, so the
// two choices stay independent while the directory grows.
uint32_t BucketIndex(uint64_t hash, uint32_t i) {
  return (static_cast<uint32_t>(hash & 0xFFFFFF) + i) % 255u;
}
}  // namespace

Cceh::Cceh(const PmContext& ctx, uint32_t initial_depth)
    : arena_(ctx), global_depth_(initial_depth) {
  FLATSTORE_CHECK_LE(initial_depth, 28u);
  directory_.resize(1ull << global_depth_);
  for (uint64_t i = 0; i < directory_.size(); i++) {
    // Pairs of directory entries initially share a segment only if we
    // created fewer segments than entries; here: one segment per entry.
    directory_[i] = NewSegment(global_depth_);
  }
}

Cceh::Segment* Cceh::NewSegment(uint32_t local_depth) {
  auto* seg = static_cast<Segment*>(arena_.Alloc(sizeof(Segment)));
  seg->local_depth = local_depth;
  std::memset(seg->buckets, 0xFF, sizeof(seg->buckets));  // keys = reserved
  return seg;
}

uint64_t Cceh::segment_count() const {
  // Distinct segments in the directory.
  uint64_t n = 0;
  const Segment* prev = nullptr;
  for (const Segment* s : directory_) {
    if (s != prev) n++;
    prev = s;
  }
  return n;
}

Cceh::SlotRef Cceh::FindSlot(uint64_t key, uint64_t hash) const {
  Segment* seg = SegmentFor(hash);
  vt::Charge(vt::kCpuSlotProbe);  // directory lookup (cached)
  for (int b = 0; b < kProbeBuckets; b++) {
    Bucket& bucket =
        seg->buckets[BucketIndex(hash, static_cast<uint32_t>(b))];
    arena_.ctx().ChargeNodeRead(&bucket);  // fetch bucket line
    for (int i = 0; i < kSlots; i++) {
      vt::Charge(vt::kCpuSlotProbe);
      if (bucket.keys[i] == key) return {&bucket, i};
    }
  }
  return {};
}

bool Cceh::Upsert(uint64_t key, uint64_t value, uint64_t* old_value) {
  FLATSTORE_DCHECK(key != kReservedKey);
  vt::Charge(vt::kCpuHash);
  const uint64_t hash = HashKey(key);
  LockGuard<SpinLock> g(mutate_lock_);
  return UpsertLocked(key, value, old_value, hash);
}

bool Cceh::UpsertLocked(uint64_t key, uint64_t value, uint64_t* old_value,
                        uint64_t hash) {
  while (true) {
    // In-place update of an existing key.
    SlotRef ref = FindSlot(key, hash);
    if (ref.bucket != nullptr) {
      *old_value = ref.bucket->values[ref.slot];
      std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
          .store(value, std::memory_order_release);
      // In-place overwrite: one line flushed, repeatedly for hot keys.
      arena_.ctx().PersistFence(&ref.bucket->values[ref.slot], 8);
      return true;
    }

    // Fresh insert into the probe window.
    Segment* seg = SegmentFor(hash);
    for (int b = 0; b < kProbeBuckets; b++) {
      Bucket& bucket =
          seg->buckets[BucketIndex(hash, static_cast<uint32_t>(b))];
      for (int i = 0; i < kSlots; i++) {
        if (bucket.keys[i] == kReservedKey) {
          bucket.values[i] = value;
          std::atomic_ref<uint64_t>(bucket.keys[i])
              .store(key, std::memory_order_release);
          arena_.ctx().PersistFence(&bucket, sizeof(Bucket));
          // relaxed: size_ is an approximate stat counter, no ordering.
          size_.fetch_add(1, std::memory_order_relaxed);
          return false;  // no previous value
        }
      }
    }

    // Probe window exhausted: split and retry.
    Split(hash);
  }
}

bool Cceh::TryPlace(Segment* seg, uint64_t hash, uint64_t key,
                    uint64_t value) {
  for (int b = 0; b < kProbeBuckets; b++) {
    Bucket& nb = seg->buckets[BucketIndex(hash, static_cast<uint32_t>(b))];
    for (int j = 0; j < kSlots; j++) {
      if (nb.keys[j] == kReservedKey) {
        nb.values[j] = value;
        nb.keys[j] = key;
        return true;
      }
    }
  }
  return false;
}

void Cceh::Split(uint64_t hash) {
  Segment* old = SegmentFor(hash);
  const uint32_t ld = old->local_depth;

  if (ld == global_depth_) {
    // Directory doubling.
    vt::Charge(vt::CostMemcpy(directory_.size() * 8));
    std::vector<Segment*> bigger(directory_.size() * 2);
    for (uint64_t i = 0; i < directory_.size(); i++) {
      bigger[2 * i] = directory_[i];
      bigger[2 * i + 1] = directory_[i];
    }
    directory_ = std::move(bigger);
    global_depth_++;
  }

  Segment* s0 = NewSegment(ld + 1);
  Segment* s1 = NewSegment(ld + 1);

  // Point the directory range at the two children first, so the
  // redistribution below can resolve through SegmentFor and recurse into
  // a further split if a probe window overflows (rare, but linear
  // probing placement is order sensitive, so it can happen).
  const uint64_t stride = 1ull << (global_depth_ - ld);
  const uint64_t base = (hash >> (64 - global_depth_)) & ~(stride - 1);
  for (uint64_t i = 0; i < stride / 2; i++) directory_[base + i] = s0;
  for (uint64_t i = stride / 2; i < stride; i++) directory_[base + i] = s1;

  for (Bucket& bucket : old->buckets) {
    for (int i = 0; i < kSlots; i++) {
      if (bucket.keys[i] == kReservedKey) continue;
      const uint64_t k = bucket.keys[i];
      const uint64_t h = HashKey(k);
      vt::Charge(vt::kCpuHash + vt::kCpuSlotProbe);
      while (!TryPlace(SegmentFor(h), h, k, bucket.values[i])) {
        Split(h);  // cascaded split (bounded by the hash width)
      }
    }
  }

  // Persistent mode: the rehash writes both children entirely — the split
  // write amplification the paper attributes to CCEH.
  arena_.ctx().Persist(s0, sizeof(Segment));
  arena_.ctx().Persist(s1, sizeof(Segment));
  arena_.ctx().Fence();
  arena_.Free(old);
}

void Cceh::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  const Segment* prev = nullptr;
  for (const Segment* seg : directory_) {
    if (seg == prev) continue;  // directory entries sharing a segment
    prev = seg;
    for (const Bucket& bucket : seg->buckets) {
      for (int i = 0; i < kSlots; i++) {
        if (bucket.keys[i] != kReservedKey) {
          fn(bucket.keys[i], bucket.values[i]);
        }
      }
    }
  }
}

bool Cceh::Get(uint64_t key, uint64_t* value) const {
  vt::Charge(vt::kCpuHash);
  SlotRef ref = FindSlot(key, HashKey(key));
  if (ref.bucket == nullptr) return false;
  *value = std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
               .load(std::memory_order_acquire);
  return true;
}

void Cceh::PrefetchGet(uint64_t key, LookupHint* hint) const {
  vt::Charge(vt::kCpuHash);
  hint->hash = HashKey(key);
  Segment* seg = SegmentFor(hint->hash);
  vt::Charge(vt::kCpuSlotProbe);  // directory lookup (cached)
  for (uint32_t b = 0; b < kProbeBuckets; b++) {
    __builtin_prefetch(&seg->buckets[BucketIndex(hint->hash, b)], 0, 3);
  }
  vt::Charge(kProbeBuckets * vt::kPrefetchIssueCost);
  hint->node = seg;
  hint->valid = true;
}

bool Cceh::GetWithHint(uint64_t key, const LookupHint& hint,
                       uint64_t* value) const {
  // A split between the phases moves the directory entry off the hinted
  // segment (only the single writer splits, so within one MultiGet batch
  // this never fires); stale hints take the serial fallback.
  if (!hint.valid || SegmentFor(hint.hash) != hint.node) {
    return KvIndex::GetWithHint(key, hint, value);
  }
  SlotRef ref = FindSlot(key, hint.hash);  // hash charged in phase A
  if (ref.bucket == nullptr) return false;
  *value = std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
               .load(std::memory_order_acquire);
  return true;
}

void Cceh::PrefetchInsert(uint64_t key, LookupHint* hint) const {
  vt::Charge(vt::kCpuHash);
  hint->hash = HashKey(key);
  Segment* seg = SegmentFor(hint->hash);
  vt::Charge(vt::kCpuSlotProbe);  // directory lookup (cached)
  for (uint32_t b = 0; b < kProbeBuckets; b++) {
    // Prefetch for write: the upsert will dirty one of these lines.
    __builtin_prefetch(&seg->buckets[BucketIndex(hint->hash, b)], 1, 3);
  }
  vt::Charge(kProbeBuckets * vt::kPrefetchIssueCost);
  hint->node = seg;
  hint->valid = true;
}

bool Cceh::InsertWithHint(uint64_t key, uint64_t value, uint64_t* old_value,
                          const LookupHint& hint) {
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SpinLock> g(mutate_lock_);
  // A split between the phases moves the directory entry off the hinted
  // segment; revalidate under the lock (an earlier InsertWithHint of the
  // same batch may have split) and fall back to the serial full upsert.
  if (!hint.valid || SegmentFor(hint.hash) != hint.node) {
    vt::ScopedOverlap serial(1);
    vt::Charge(vt::kCpuHash);
    return UpsertLocked(key, value, old_value, HashKey(key));
  }
  return UpsertLocked(key, value, old_value, hint.hash);
}

bool Cceh::Erase(uint64_t key, uint64_t* old_value) {
  vt::Charge(vt::kCpuHash);
  LockGuard<SpinLock> g(mutate_lock_);
  SlotRef ref = FindSlot(key, HashKey(key));
  if (ref.bucket == nullptr) return false;
  *old_value = ref.bucket->values[ref.slot];
  std::atomic_ref<uint64_t>(ref.bucket->keys[ref.slot])
      .store(kReservedKey, std::memory_order_release);
  arena_.ctx().PersistFence(&ref.bucket->keys[ref.slot], 8);
  // relaxed: size_ is an approximate stat counter, no ordering.
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Cceh::CompareExchange(uint64_t key, uint64_t expected,
                           uint64_t desired) {
  vt::Charge(vt::kCpuHash + vt::kCpuCas);
  LockGuard<SpinLock> g(mutate_lock_);
  SlotRef ref = FindSlot(key, HashKey(key));
  if (ref.bucket == nullptr) return false;
  bool ok = std::atomic_ref<uint64_t>(ref.bucket->values[ref.slot])
                .compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel);
  if (ok) arena_.ctx().PersistFence(&ref.bucket->values[ref.slot], 8);
  return ok;
}


bool Cceh::EraseIfEqual(uint64_t key, uint64_t expected) {
  vt::Charge(vt::kCpuHash + vt::kCpuCas);
  LockGuard<SpinLock> g(mutate_lock_);
  SlotRef ref = FindSlot(key, HashKey(key));
  if (ref.bucket == nullptr || ref.bucket->values[ref.slot] != expected) {
    return false;
  }
  std::atomic_ref<uint64_t>(ref.bucket->keys[ref.slot])
      .store(kReservedKey, std::memory_order_release);
  arena_.ctx().PersistFence(&ref.bucket->keys[ref.slot], 8);
  // relaxed: size_ is an approximate stat counter, no ordering.
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

}  // namespace index
}  // namespace flatstore
