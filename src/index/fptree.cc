#include "index/fptree.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace index {

FpTree::FpTree(const PmContext& ctx) : arena_(ctx) {
  root_ = NewLeaf();
  height_ = 1;
}

FpTree::Leaf* FpTree::NewLeaf() {
  auto* l = static_cast<Leaf*>(arena_.Alloc(sizeof(Leaf)));
  l->bitmap = 0;
  l->next = nullptr;
  std::memset(l->fps, 0, sizeof(l->fps));
  return l;
}

FpTree::Inner* FpTree::NewInner(uint32_t level) {
  inner_pool_.push_back(std::make_unique<Inner>());
  Inner* n = inner_pool_.back().get();
  n->level = level;
  n->count = 0;
  n->leftmost = nullptr;
  return n;
}

namespace {
// First entry with key >= `key` in a sorted inner node.
template <typename NodeT>
int InnerLowerBound(const NodeT* n, uint64_t key) {
  int i = 0;
  while (i < static_cast<int>(n->count) && n->entries[i].key <= key) {
    vt::Charge(vt::kCpuSlotProbe);
    i++;
  }
  return i;  // child index: 0 => leftmost, else entries[i-1].child
}
}  // namespace

FpTree::Leaf* FpTree::FindLeaf(uint64_t key) const {
  const void* n = root_;
  for (uint32_t h = height_; h > 1; h--) {
    vt::Charge(vt::kCpuCacheMiss);
    const Inner* inner = static_cast<const Inner*>(n);
    int i = InnerLowerBound(inner, key);
    n = i == 0 ? inner->leftmost : inner->entries[i - 1].child;
  }
  arena_.ctx().ChargeNodeRead(n);  // leaf header line lives in PM
  return const_cast<Leaf*>(static_cast<const Leaf*>(n));
}

int FpTree::FindInLeaf(const Leaf* l, uint64_t key, uint8_t fp) {
  for (int i = 0; i < kLeafSlots; i++) {
    if ((l->bitmap >> i) & 1) {
      vt::Charge(vt::kCpuSlotProbe);  // fingerprint compare
      if (l->fps[i] == fp && l->entries[i].key == key) {
        vt::Charge(vt::kCpuCacheMiss);  // entry line
        return i;
      }
    }
  }
  return -1;
}

int FpTree::FreeSlot(const Leaf* l) {
  uint64_t free = ~l->bitmap & ((1ull << kLeafSlots) - 1);
  return free == 0 ? -1 : __builtin_ctzll(free);
}

FpTree::Leaf* FpTree::SplitLeaf(Leaf* leaf, uint64_t* up_key) {
  // Collect live entries and take the median as separator (the original
  // scans the unsorted leaf for the median key).
  std::vector<std::pair<uint64_t, int>> live;  // (key, slot)
  for (int i = 0; i < kLeafSlots; i++) {
    if ((leaf->bitmap >> i) & 1) live.push_back({leaf->entries[i].key, i});
  }
  vt::Charge(vt::kCpuSlotProbe * static_cast<uint64_t>(live.size()));
  std::nth_element(
      live.begin(), live.begin() + static_cast<long>(live.size()) / 2,
      live.end());
  const size_t mid = live.size() / 2;
  *up_key = live[mid].first;

  Leaf* right = NewLeaf();
  uint64_t cleared = leaf->bitmap;
  int slot = 0;
  for (size_t i = mid; i < live.size(); i++) {
    right->entries[slot] = leaf->entries[live[i].second];
    right->fps[slot] = leaf->fps[live[i].second];
    right->bitmap |= (1ull << slot);
    cleared &= ~(1ull << live[i].second);
    slot++;
  }
  vt::Charge(vt::CostMemcpy(static_cast<uint64_t>(slot) * 16));
  right->next = leaf->next;
  // Commit order: new leaf fully persistent -> link -> shrink old bitmap.
  arena_.ctx().Persist(right, sizeof(Leaf));
  arena_.ctx().Fence();
  leaf->next = right;
  arena_.ctx().PersistFence(&leaf->next, 8);
  leaf->bitmap = cleared;
  arena_.ctx().PersistFence(&leaf->bitmap, 8);
  return right;
}

void FpTree::InsertInner(uint64_t up_key, void* right,
                         const std::vector<Inner*>& path) {
  void* carry_child = right;
  uint64_t carry_key = up_key;
  // Walk the path bottom-up inserting the separator; split volatile inner
  // nodes as needed (no flushes: inner nodes are DRAM-only by design).
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Inner* n = *it;
    int pos = 0;
    while (pos < static_cast<int>(n->count) && n->entries[pos].key < carry_key) {
      pos++;
    }
    if (static_cast<int>(n->count) < kInnerCard) {
      for (int i = static_cast<int>(n->count); i > pos; i--) {
        n->entries[i] = n->entries[i - 1];
      }
      n->entries[pos] = {carry_key, carry_child};
      n->count++;
      return;
    }
    // Split the inner node.
    Inner* sib = NewInner(n->level);
    const int half = kInnerCard / 2;
    uint64_t mid_key = n->entries[half].key;
    sib->leftmost = n->entries[half].child;
    sib->count = static_cast<uint32_t>(kInnerCard - half - 1);
    std::memcpy(sib->entries, &n->entries[half + 1],
                sizeof(Inner::Entry) * sib->count);
    n->count = static_cast<uint32_t>(half);
    // Place the carried separator in the proper half.
    Inner* target = carry_key < mid_key ? n : sib;
    int p = 0;
    while (p < static_cast<int>(target->count) &&
           target->entries[p].key < carry_key) {
      p++;
    }
    for (int i = static_cast<int>(target->count); i > p; i--) {
      target->entries[i] = target->entries[i - 1];
    }
    target->entries[p] = {carry_key, carry_child};
    target->count++;
    carry_key = mid_key;
    carry_child = sib;
  }
  // Root overflow: new root.
  Inner* new_root = NewInner(height_);
  new_root->leftmost = root_;
  new_root->entries[0] = {carry_key, carry_child};
  new_root->count = 1;
  root_ = new_root;
  height_++;
}

bool FpTree::Upsert(uint64_t key, uint64_t value, uint64_t* old_value) {
  FLATSTORE_DCHECK(key != kReservedKey);
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuHash + vt::kCpuCas);
  const uint8_t fp = Fingerprint8(key);

  while (true) {
    std::vector<Inner*> path;
    void* n = root_;
    for (uint32_t h = height_; h > 1; h--) {
      vt::Charge(vt::kCpuCacheMiss);
      Inner* inner = static_cast<Inner*>(n);
      path.push_back(inner);
      int i = InnerLowerBound(inner, key);
      n = i == 0 ? inner->leftmost : inner->entries[i - 1].child;
    }
    Leaf* leaf = static_cast<Leaf*>(n);
    arena_.ctx().ChargeNodeRead(leaf);

    const int existing = FindInLeaf(leaf, key, fp);
    int free = FreeSlot(leaf);
    if (free < 0) {
      uint64_t up;
      Leaf* right = SplitLeaf(leaf, &up);
      InsertInner(up, right, path);
      (void)right;
      continue;  // re-descend (path/root may have changed)
    }

    // Write the new entry out-of-place, persist it, then commit via one
    // bitmap-word store (clearing the old slot for updates).
    leaf->entries[free] = {key, value};
    leaf->fps[free] = fp;
    arena_.ctx().Persist(&leaf->entries[free], 16);
    if (existing >= 0) *old_value = leaf->entries[existing].value;
    uint64_t bm = leaf->bitmap | (1ull << free);
    if (existing >= 0) bm &= ~(1ull << existing);
    leaf->bitmap = bm;
    // Header line: bitmap + fingerprints share the first cacheline.
    arena_.ctx().Persist(leaf, 64);
    arena_.ctx().Fence();
    if (existing < 0) size_++;
    return existing >= 0;
  }
}

bool FpTree::Get(uint64_t key, uint64_t* value) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuHash);
  const Leaf* leaf = FindLeaf(key);
  int i = FindInLeaf(leaf, key, Fingerprint8(key));
  if (i < 0) return false;
  *value = leaf->entries[i].value;
  return true;
}

bool FpTree::Erase(uint64_t key, uint64_t* old_value) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuHash + vt::kCpuCas);
  Leaf* leaf = FindLeaf(key);
  int i = FindInLeaf(leaf, key, Fingerprint8(key));
  if (i < 0) return false;
  *old_value = leaf->entries[i].value;
  leaf->bitmap &= ~(1ull << i);
  arena_.ctx().PersistFence(&leaf->bitmap, 8);
  size_--;
  return true;
}

bool FpTree::CompareExchange(uint64_t key, uint64_t expected,
                             uint64_t desired) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuCas);
  Leaf* leaf = FindLeaf(key);
  int i = FindInLeaf(leaf, key, Fingerprint8(key));
  if (i < 0 || leaf->entries[i].value != expected) return false;
  leaf->entries[i].value = desired;
  arena_.ctx().PersistFence(&leaf->entries[i].value, 8);
  return true;
}

void FpTree::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  for (const Leaf* leaf = FindLeaf(0); leaf != nullptr; leaf = leaf->next) {
    for (int i = 0; i < kLeafSlots; i++) {
      if ((leaf->bitmap >> i) & 1) {
        fn(leaf->entries[i].key, leaf->entries[i].value);
      }
    }
  }
}

uint64_t FpTree::Scan(uint64_t start_key, uint64_t count,
                      std::vector<KvPair>* out) const {
  SharedLockGuard<SharedMutex> g(rw_lock_);
  uint64_t n = 0;
  const Leaf* leaf = FindLeaf(start_key);
  while (leaf != nullptr && n < count) {
    // Leaves are unsorted: sort a local copy of each visited leaf.
    std::vector<KvPair> local;
    for (int i = 0; i < kLeafSlots; i++) {
      if ((leaf->bitmap >> i) & 1 && leaf->entries[i].key >= start_key) {
        local.push_back({leaf->entries[i].key, leaf->entries[i].value});
      }
    }
    std::sort(local.begin(), local.end(),
              [](const KvPair& a, const KvPair& b) { return a.key < b.key; });
    arena_.ctx().ChargeNodeRead(leaf);
    vt::Charge(vt::kCpuSlotProbe * static_cast<uint64_t>(kLeafSlots));
    for (const KvPair& p : local) {
      if (n >= count) break;
      out->push_back(p);
      n++;
    }
    leaf = leaf->next;
  }
  return n;
}


bool FpTree::EraseIfEqual(uint64_t key, uint64_t expected) {
  LockGuard<SharedMutex> g(rw_lock_);
  vt::Charge(vt::kCpuHash + vt::kCpuCas);
  Leaf* leaf = FindLeaf(key);
  int i = FindInLeaf(leaf, key, Fingerprint8(key));
  if (i < 0 || leaf->entries[i].value != expected) return false;
  leaf->bitmap &= ~(1ull << i);
  arena_.ctx().PersistFence(&leaf->bitmap, 8);
  size_--;
  return true;
}

}  // namespace index
}  // namespace flatstore
