#include "tier/tier.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace tier {

namespace {

// Bytes usable for nodes in one arena chunk, after the allocator header
// and the arena header.
constexpr uint64_t kArenaDataOff =
    alloc::kChunkHeaderSize + sizeof(ArenaHeader);
constexpr uint64_t kArenaCapacity = alloc::kChunkSize - kArenaDataOff;

inline uint64_t LoadLink(const uint64_t* slot) {
  return std::atomic_ref<const uint64_t>(*slot).load(
      std::memory_order_acquire);
}

inline void StoreLink(uint64_t* slot, uint64_t v) {
  std::atomic_ref<uint64_t>(*slot).store(v, std::memory_order_release);
}

}  // namespace

PersistentTier::PersistentTier(pm::PmPool* pool, alloc::LazyAllocator* alloc,
                               int num_sockets, uint64_t root_off)
    : pool_(pool),
      alloc_(alloc),
      num_sockets_(num_sockets < 1 ? 1 : num_sockets),
      root_off_(root_off),
      arena_global_tail_(root_off) {
  if (num_sockets_ > kMaxLaneSockets) num_sockets_ = kMaxLaneSockets;
  std::memset(lane_heads_, 0, sizeof(lane_heads_));
}

TierRoot* PersistentTier::tier_root() const {
  return pool_->PtrAt<TierRoot>(root_off_ + alloc::kChunkHeaderSize +
                                sizeof(ArenaHeader));
}

ArenaHeader* PersistentTier::arena_header(uint64_t chunk_off) const {
  return pool_->PtrAt<ArenaHeader>(chunk_off + alloc::kChunkHeaderSize);
}

uint64_t PersistentTier::node_count() const { return node_count_; }

std::unique_ptr<PersistentTier> PersistentTier::Create(
    pm::PmPool* pool, alloc::LazyAllocator* alloc, int num_sockets,
    const std::vector<int>& socket_cores) {
  const int core0 = socket_cores.empty() ? 0 : socket_cores[0];
  const uint64_t off = alloc->AllocRawChunk(core0);
  if (off == 0) return nullptr;
  auto t = std::unique_ptr<PersistentTier>(
      new PersistentTier(pool, alloc, num_sockets, off));
  t->socket_cores_ = socket_cores;
  ArenaHeader* hdr = t->arena_header(off);
  hdr->next = 0;
  hdr->socket = 0;
  hdr->used = sizeof(TierRoot);  // the root block is the first reservation
  TierRoot* root = t->tier_root();
  root->head0 = 0;
  root->node_count = 0;
  pool->Persist(hdr, sizeof(ArenaHeader));
  pool->Persist(root, sizeof(TierRoot));
  pool->Fence();
  // The magic is the root's validity bit, made durable only after every
  // other field (same idiom as the superblock format). The tier becomes
  // reachable when the caller publishes tier_root_off in the superblock.
  root->magic = kTierMagic;
  pool->PersistFence(&root->magic, sizeof(root->magic));
  t->arena_chunks_.push_back(off);
  t->socket_tail_[0] = off;
  return t;
}

std::unique_ptr<PersistentTier> PersistentTier::Open(
    pm::PmPool* pool, alloc::LazyAllocator* alloc, int num_sockets,
    const std::vector<int>& socket_cores, uint64_t root_off,
    const std::function<void(uint64_t key, uint64_t packed)>& on_node) {
  auto t = std::unique_ptr<PersistentTier>(
      new PersistentTier(pool, alloc, num_sockets, root_off));
  t->socket_cores_ = socket_cores;
  FLATSTORE_CHECK_EQ(t->tier_root()->magic, kTierMagic)
      << "tier root magic mismatch at " << root_off;
  // Walk the arena chain; the last chunk per socket is that socket's
  // allocation tail.
  uint64_t off = root_off;
  while (off != 0) {
    FLATSTORE_CHECK(off % alloc::kChunkSize == 0 &&
                    off + alloc::kChunkSize <= pool->size())
        << "tier arena chain corrupt at " << off;
    t->arena_chunks_.push_back(off);
    const ArenaHeader* hdr = t->arena_header(off);
    const int s = static_cast<int>(hdr->socket) % kMaxLaneSockets;
    t->socket_tail_[s] = off;
    t->arena_global_tail_ = off;
    off = hdr->next;
  }
  t->RebuildLanes(on_node);
  return t;
}

void PersistentTier::RebuildLanes(
    const std::function<void(uint64_t key, uint64_t packed)>& on_node) {
  // The L0 list is the durable truth; the braided per-socket express
  // lanes above it are soft state reconstructed here on every open, so a
  // crash can never expose a torn lane.
  uint64_t* tails[kMaxLaneSockets][kMaxHeight];
  for (int s = 0; s < kMaxLaneSockets; s++)
    for (int l = 0; l < kMaxHeight; l++) tails[s][l] = &lane_heads_[s][l];
  node_count_ = 0;
  uint64_t cur = tier_root()->head0;
  while (cur != 0) {
    TierNode* n = NodeAt(cur);
    pool_->ChargeRead(n, TierNodeBytes(n->height));
    FLATSTORE_CHECK(n->height >= 1 && n->height <= kMaxHeight)
        << "tier node at " << cur << " has bad height " << n->height;
    const int s =
        static_cast<int>(n->home_socket) % (num_sockets_ ? num_sockets_ : 1);
    for (int l = 1; l < n->height; l++) {
      // fs-lint: publish-ok(soft lane links, rebuilt from L0 on every open)
      StoreLink(tails[s][l], cur);
      tails[s][l] = &n->next[l];
    }
    if (on_node) on_node(n->key, n->packed);
    node_count_++;
    cur = n->next[0];
  }
  for (int s = 0; s < kMaxLaneSockets; s++) {
    for (int l = 1; l < kMaxHeight; l++) {
      // fs-lint: publish-ok(soft lane terminator, rebuilt from L0 on every open)
      StoreLink(tails[s][l], 0);
    }
  }
}

void PersistentTier::ForEachArenaChunk(
    const std::function<void(uint64_t)>& fn) const {
  for (uint64_t off : arena_chunks_) fn(off);
}

uint64_t PersistentTier::AssignNodeBytes(uint64_t bytes, int socket,
                                         std::vector<uint64_t>* dirty) {
  FLATSTORE_DCHECK(bytes <= kArenaCapacity);
  uint64_t tail = socket_tail_[socket];
  if (tail == 0 || arena_header(tail)->used + bytes > kArenaCapacity) {
    const int core =
        static_cast<size_t>(socket) < socket_cores_.size()
            ? socket_cores_[static_cast<size_t>(socket)]
            : 0;
    const uint64_t fresh = alloc_->AllocRawChunk(core);
    if (fresh == 0) return 0;
    ArenaHeader* hdr = arena_header(fresh);
    hdr->next = 0;
    hdr->used = 0;
    hdr->socket = static_cast<uint64_t>(socket);
    pool_->Persist(hdr, sizeof(ArenaHeader));
    pool_->Fence();
    // Publish the chunk on the arena chain only after its header is
    // durable; the 8-byte link store is tear-proof.
    ArenaHeader* prev = arena_header(arena_global_tail_);
    StoreLink(&prev->next, fresh);
    // fs-lint: deferred-fence(the chain link rides InsertBatch's reserve
    // fence; a torn link only leaks the fresh chunk, never corrupts)
    pool_->Persist(&prev->next, sizeof(uint64_t));
    arena_chunks_.push_back(fresh);
    arena_global_tail_ = fresh;
    socket_tail_[socket] = fresh;
    tail = fresh;
  }
  ArenaHeader* hdr = arena_header(tail);
  const uint64_t off = tail + kArenaDataOff + hdr->used;
  // Volatile bump; InsertBatch persists + fences every dirty `used` word
  // before any node byte is written (reserve-then-link). A crash between
  // the fence and the node writes only leaks the reserved bytes.
  hdr->used += bytes;
  dirty->push_back(tail);
  return off;
}

bool PersistentTier::InsertBatch(const TierEntry* entries, size_t n) {
  if (n == 0) return true;
  TierRoot* root = tier_root();

  // Pass A — classify: one forward L0 cursor (the batch is key-sorted)
  // marks which keys already have nodes (in-place update) vs need fresh
  // ones.
  std::vector<bool> is_new(n);
  {
    uint64_t cur = LoadLink(&root->head0);
    for (size_t i = 0; i < n; i++) {
      FLATSTORE_DCHECK(i == 0 || entries[i - 1].key < entries[i].key)
          << "InsertBatch requires a key-sorted, duplicate-free batch";
      while (cur != 0 && NodeAt(cur)->key < entries[i].key) {
        pool_->ChargeRead(NodeAt(cur), 24);
        cur = LoadLink(&NodeAt(cur)->next[0]);
      }
      is_new[i] = (cur == 0 || NodeAt(cur)->key != entries[i].key);
    }
  }

  // Pass B — reserve-then-link, step 1: durably reserve every new node's
  // bytes. All touched arena `used` words persist under one fence BEFORE
  // any node byte is written, so a post-crash allocator can never hand
  // out bytes under a published node.
  std::vector<uint64_t> offs(n, 0);
  std::vector<uint64_t> dirty;
  for (size_t i = 0; i < n; i++) {
    if (!is_new[i]) continue;
    const int s = entries[i].home_socket % num_sockets_;
    offs[i] = AssignNodeBytes(TierNodeBytes(NodeHeight(entries[i].key)), s,
                              &dirty);
    if (offs[i] == 0) {
      // Arena exhausted; nothing published. Settle any arena chain-link
      // persists issued while growing, then bail.
      pool_->Fence();
      return false;
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (uint64_t chunk : dirty) {
    pool_->Persist(&arena_header(chunk)->used, sizeof(uint64_t));
  }
  if (!dirty.empty()) pool_->Fence();

  // Pass C — zipper merge. Forward-only cursors (one global L0 slot, one
  // lane slot per socket x level) resume from the previous key's
  // position, so the whole batch is a single merge sweep.
  uint64_t* l0_slot = &root->head0;
  uint64_t* lane_slot[kMaxLaneSockets][kMaxHeight];
  for (int s = 0; s < kMaxLaneSockets; s++)
    for (int l = 0; l < kMaxHeight; l++) lane_slot[s][l] = &lane_heads_[s][l];

  for (size_t i = 0; i < n; i++) {
    const uint64_t key = entries[i].key;
    for (;;) {
      const uint64_t nxt = LoadLink(l0_slot);
      if (nxt == 0 || NodeAt(nxt)->key >= key) break;
      pool_->ChargeRead(NodeAt(nxt), 24);
      l0_slot = &NodeAt(nxt)->next[0];
    }
    const uint64_t succ = LoadLink(l0_slot);
    if (!is_new[i]) {
      FLATSTORE_DCHECK(succ != 0 && NodeAt(succ)->key == key);
      TierNode* node = NodeAt(succ);
      // Tear-proof in-place update: one 8-byte store. The entry it names
      // was persisted by the log append long ago.
      StoreLink(&node->packed, entries[i].packed);
      pool_->Persist(&node->packed, sizeof(uint64_t));
      continue;
    }
    const int s = entries[i].home_socket % num_sockets_;
    const int height = NodeHeight(key);
    TierNode* node = NodeAt(offs[i]);
    node->key = key;
    node->packed = entries[i].packed;
    node->height = static_cast<uint16_t>(height);
    node->home_socket = static_cast<uint16_t>(s);
    node->pad = 0;
    node->next[0] = succ;
    for (int l = 1; l < height; l++) {
      while (true) {
        const uint64_t lnxt = LoadLink(lane_slot[s][l]);
        if (lnxt == 0 || NodeAt(lnxt)->key >= key) break;
        pool_->ChargeRead(NodeAt(lnxt), 24);
        lane_slot[s][l] = &NodeAt(lnxt)->next[l];
      }
      node->next[l] = LoadLink(lane_slot[s][l]);
    }
    // Persist-before-publish: the node's bytes are durable and fenced
    // before the single 8-byte L0 link store makes it reachable.
    pool_->Persist(node, TierNodeBytes(height));
    pool_->Fence();
    StoreLink(l0_slot, offs[i]);
    // L0 link is 8-byte tear-proof; the batch's trailing fence orders it
    // before the conversion commit (SetChunkTiered).
    pool_->Persist(l0_slot, sizeof(uint64_t));
    for (int l = 1; l < height; l++) {
      // fs-lint: publish-ok(soft lane links, rebuilt from L0 on every open)
      StoreLink(lane_slot[s][l], offs[i]);
      lane_slot[s][l] = &node->next[l];
    }
    l0_slot = &node->next[0];
    node_count_++;
  }
  root->node_count = node_count_;
  // Advisory counter, recomputed from the L0 walk on open.
  pool_->Persist(&root->node_count, sizeof(uint64_t));
  pool_->Fence();
  return true;
}

uint64_t* PersistentTier::FindL0Slot(uint64_t target, int socket_hint) const {
  const int s = ((socket_hint % num_sockets_) + num_sockets_) % num_sockets_;
  uint64_t* slot = &lane_heads_[s][kMaxHeight - 1];
  for (int level = kMaxHeight - 1; level >= 1; level--) {
    for (;;) {
      const uint64_t nxt = LoadLink(slot);
      if (nxt == 0 || NodeAt(nxt)->key >= target) break;
      pool_->ChargeRead(NodeAt(nxt), 24);
      slot = &NodeAt(nxt)->next[level];
    }
    if (level == 1) {
      // Drop from the socket lanes to the global L0 list: either from the
      // lane head (empty lane walk) or from the last lane node's L0 link.
      slot = (slot == &lane_heads_[s][1]) ? &tier_root()->head0
                                          : slot - 1;
    } else {
      // Lane arrays (both the DRAM heads and a node's next[]) are
      // contiguous, so one slot down is one element back.
      slot = slot - 1;
    }
  }
  for (;;) {
    const uint64_t nxt = LoadLink(slot);
    if (nxt == 0 || NodeAt(nxt)->key >= target) break;
    pool_->ChargeRead(NodeAt(nxt), 24);
    slot = &NodeAt(nxt)->next[0];
  }
  return slot;
}

bool PersistentTier::Get(uint64_t key, uint64_t* packed,
                         int socket_hint) const {
  uint64_t* slot = FindL0Slot(key, socket_hint);
  const uint64_t nxt = LoadLink(slot);
  if (nxt == 0) return false;
  const TierNode* n = NodeAt(nxt);
  pool_->ChargeRead(n, 24);
  if (n->key != key) return false;
  *packed = LoadLink(&n->packed);
  return true;
}

uint64_t PersistentTier::Iterator::key() const {
  FLATSTORE_DCHECK(Valid());
  return tier_->NodeAt(node_)->key;
}

uint64_t PersistentTier::Iterator::packed() const {
  FLATSTORE_DCHECK(Valid());
  return LoadLink(&tier_->NodeAt(node_)->packed);
}

void PersistentTier::Iterator::Next() {
  FLATSTORE_DCHECK(Valid());
  const TierNode* n = tier_->NodeAt(node_);
  tier_->pool_->ChargeRead(n, 24);
  node_ = LoadLink(&n->next[0]);
}

PersistentTier::Iterator PersistentTier::Seek(uint64_t start_key,
                                              int socket_hint) const {
  uint64_t* slot = FindL0Slot(start_key, socket_hint);
  return Iterator(this, LoadLink(slot));
}

void PersistentTier::ForEach(
    const std::function<void(uint64_t key, uint64_t packed)>& fn) const {
  uint64_t cur = LoadLink(&tier_root()->head0);
  while (cur != 0) {
    const TierNode* n = NodeAt(cur);
    pool_->ChargeRead(n, 24);
    fn(n->key, LoadLink(&n->packed));
    cur = LoadLink(&n->next[0]);
  }
}

}  // namespace tier
}  // namespace flatstore
