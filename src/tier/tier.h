// Ordered persistent tier: a braided persistent skiplist whose nodes alias
// value bytes still sitting in converted ("tiered") OpLog chunks.
//
// The tier is FlatStore's answer to two linear costs of a pure log
// (DESIGN.md §11): recovery replaying every log byte, and range scans
// having no ordered path when the volatile index is a hash. Following
// ListDB's Index-Unified Logging, a background tiering pass converts a
// sealed log chunk's live entries *in place* into skiplist nodes — the
// node stores the entry's packed {offset, version} word, never a copy of
// the value — and then stamps the chunk's registry record with the
// persistent kChunkTiered flag. From then on recovery loads the tier's
// durable level-0 list instead of replaying the chunk, so recovery time
// tracks the live-key count, not the log size.
//
// Durability contract (what crash_explorer exercises):
//
//   * Only the node bytes and the level-0 ("L0") forward links are
//     durable state. Every node is persisted and fenced BEFORE the single
//     8-byte L0 link store that publishes it (persist-before-publish), so
//     a crash leaves a valid L0 list containing some subset of the
//     in-flight batch — never a link to a torn node.
//   * Arena allocation is reserve-then-link: the arena header's `used`
//     high-water mark is persisted and fenced before any reserved byte is
//     written. A crash can leak reserved-but-unlinked bytes; it can never
//     let a later allocation overwrite a published node.
//   * The braided upper lanes (per-socket express lanes above L0) are
//     SOFT state: written without persist ordering and rebuilt from the
//     L0 walk on every open. Torn lanes are impossible by construction.
//   * In-place updates of an existing key touch exactly one 8-byte
//     `packed` word (atomic store + persist), so they are tear-proof.
//
// Concurrency: single mutator (the tiering pass is serialized by the
// caller), lock-free concurrent readers. All link and `packed` accesses
// go through std::atomic_ref with release/acquire ordering.

#ifndef FLATSTORE_TIER_TIER_H_
#define FLATSTORE_TIER_TIER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alloc/lazy_allocator.h"
#include "common/logging.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace tier {

inline constexpr uint64_t kTierMagic = 0x11E2F1A757025Bull;

// Max skiplist height. With branching factor 4 (NodeHeight below), height
// 12 indexes ~4^11 ≈ 4M nodes per socket lane — plenty for the simulated
// pool sizes this engine targets.
inline constexpr int kMaxHeight = 12;

// Upper bound on per-socket lane sets kept by the braid (matches the vt
// cost model's kMaxSockets).
inline constexpr int kMaxLaneSockets = 4;

// One persistent skiplist node. Variable length: 24 bytes of header plus
// one 8-byte forward link per level. next[0] is the single global L0 list
// (durable); next[1..height-1] are the node's home-socket express lanes
// (soft, rebuilt on open). The node carries no value bytes: `packed` is
// the same {entry offset, version} word the volatile index stores, and
// the entry it names lives forever in its (tiered, never freed) log
// chunk.
struct TierNode {
  uint64_t key;
  uint64_t packed;  // log::PackIndexValue format; atomically updated
  uint16_t height;  // 1..kMaxHeight
  uint16_t home_socket;
  uint32_t pad;
  uint64_t next[1];  // really next[height]
};

inline constexpr uint64_t TierNodeBytes(int height) {
  return 24 + 8 * static_cast<uint64_t>(height);
}

// Deterministic node height from the key (splitmix64 finalizer, branching
// factor 1/4). Determinism keeps the crash explorer's flush counts
// reproducible and makes recovery rebuild byte-identical lane shapes.
inline int NodeHeight(uint64_t key) {
  uint64_t z = key * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  int h = 1;
  while (h < kMaxHeight && (z & 3) == 0) {
    h++;
    z >>= 2;
  }
  return h;
}

// Arena bookkeeping at chunk_off + alloc::kChunkHeaderSize of every tier
// arena chunk. `used` counts bytes consumed after this header and is the
// durable reservation high-water mark; `next` chains arena chunks (the
// chain is how recovery and fsck enumerate them — arena chunks are NOT in
// the log chunk registry, which holds only log segments). `socket` is the
// socket this chunk serves nodes for, so reopening rebuilds the
// per-socket allocation tails.
struct ArenaHeader {
  uint64_t next;
  uint64_t used;
  uint64_t socket;
};

// Tier root, immediately after the first arena chunk's ArenaHeader. The
// superblock's tier_root_off points at that chunk.
struct TierRoot {
  uint64_t magic;
  uint64_t head0;       // L0 head node offset (0 = empty tier)
  uint64_t node_count;  // advisory; recomputed from the L0 walk on open
};

// One key to merge into the tier.
struct TierEntry {
  uint64_t key;
  uint64_t packed;
  int home_socket;
};

class PersistentTier {
 public:
  // Formats a fresh tier: allocates the root arena chunk and persists an
  // empty TierRoot. `socket_cores[s]` names a core homed on socket s —
  // the arena allocates each socket's node chunks through that core so
  // nodes land socket-local (PR 8 placement). Returns nullptr if the
  // pool is out of chunks.
  static std::unique_ptr<PersistentTier> Create(
      pm::PmPool* pool, alloc::LazyAllocator* alloc, int num_sockets,
      const std::vector<int>& socket_cores);

  // Opens an existing tier rooted at `root_off`: walks the arena chain,
  // then walks L0 once to rebuild the soft braided lanes, invoking
  // `on_node(key, packed)` for every node (recovery uses this to feed the
  // volatile index without a second walk). `on_node` may be null.
  static std::unique_ptr<PersistentTier> Open(
      pm::PmPool* pool, alloc::LazyAllocator* alloc, int num_sockets,
      const std::vector<int>& socket_cores, uint64_t root_off,
      const std::function<void(uint64_t key, uint64_t packed)>& on_node);

  uint64_t root_off() const { return root_off_; }
  uint64_t node_count() const;
  uint64_t arena_chunk_count() const { return arena_chunks_.size(); }

  // Invokes `fn` for every arena chunk offset (recovery marks them
  // allocated; fsck walks them).
  void ForEachArenaChunk(const std::function<void(uint64_t)>& fn) const;

  // Zipper-merges a key-sorted, duplicate-free batch into the tier.
  // Existing keys take the tear-proof in-place packed update; new keys
  // get freshly reserved nodes with per-node persist-before-publish on
  // the L0 link. One trailing fence covers the batch's deferred persists;
  // the caller's conversion commit (SetChunkTiered) happens after this
  // returns. Single mutator only. Returns false (with no partial batch
  // published beyond already-fenced nodes — which are harmlessly
  // idempotent) if the pool cannot grow the arena.
  bool InsertBatch(const TierEntry* entries, size_t n);

  // Point lookup. `socket_hint` picks which socket's express lanes to
  // ride (any value is correct; the key's home socket is fastest).
  bool Get(uint64_t key, uint64_t* packed, int socket_hint = 0) const;

  // Ordered L0 cursor. Reads charge the vt PM-read cost like any other
  // media access.
  class Iterator {
   public:
    bool Valid() const { return node_ != 0; }
    uint64_t key() const;
    uint64_t packed() const;
    void Next();

   private:
    friend class PersistentTier;
    Iterator(const PersistentTier* t, uint64_t node) : tier_(t), node_(node) {}
    const PersistentTier* tier_;
    uint64_t node_;  // pool offset of the current node
  };

  // Positions a cursor at the first node with key >= start_key.
  Iterator Seek(uint64_t start_key, int socket_hint = 0) const;

  // In-order walk over every node (tests, fsck, recovery block marking).
  void ForEach(
      const std::function<void(uint64_t key, uint64_t packed)>& fn) const;

 private:
  PersistentTier(pm::PmPool* pool, alloc::LazyAllocator* alloc,
                 int num_sockets, uint64_t root_off);

  TierRoot* tier_root() const;
  ArenaHeader* arena_header(uint64_t chunk_off) const;
  TierNode* NodeAt(uint64_t off) const {
    return pool_->PtrAt<TierNode>(off);
  }

  // Braided descent: returns the address of the L0 link slot whose
  // successor is the first node with key >= target (the slot lives either
  // in TierRoot::head0 or in a node's next[0]).
  uint64_t* FindL0Slot(uint64_t target, int socket_hint) const;

  // Volatile-only arena bump: assigns `bytes` from socket `socket`'s tail
  // chunk, growing the chain if needed, and records the touched header in
  // `dirty`. The durable `used` persists + fence happen once per batch in
  // InsertBatch, BEFORE any node byte is written (reserve-then-link).
  uint64_t AssignNodeBytes(uint64_t bytes, int socket,
                           std::vector<uint64_t>* dirty);

  void RebuildLanes(
      const std::function<void(uint64_t key, uint64_t packed)>& on_node);

  pm::PmPool* pool_;
  alloc::LazyAllocator* alloc_;
  int num_sockets_;
  std::vector<int> socket_cores_;
  uint64_t root_off_;
  uint64_t node_count_ = 0;
  std::vector<uint64_t> arena_chunks_;  // chain mirror, head first
  uint64_t arena_global_tail_;          // last chunk in the chain
  // Per-socket allocation tail chunk (0 = none yet).
  uint64_t socket_tail_[kMaxLaneSockets] = {};

  // Soft braided lane heads, one set per socket. DRAM: rebuilt on open,
  // read/written through atomic_ref like the in-node lane links.
  mutable uint64_t lane_heads_[kMaxLaneSockets][kMaxHeight];
};

}  // namespace tier
}  // namespace flatstore

#endif  // FLATSTORE_TIER_TIER_H_
