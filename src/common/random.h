// Pseudo-random number generation and workload-skew distributions.
//
// Xoroshiro128++ for raw 64-bit randomness, plus the YCSB-style scrambled
// zipfian generator (Gray et al.'s incremental zipf algorithm) used by the
// paper's "skew" workloads (zipfian constant 0.99, YCSB's default).

#ifndef FLATSTORE_COMMON_RANDOM_H_
#define FLATSTORE_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "common/hash.h"
#include "common/logging.h"

namespace flatstore {

// Xoroshiro128++ PRNG (Blackman & Vigna). Deterministic per seed; one
// instance per thread/connection so workloads are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding to avoid all-zero state.
    for (auto* s : {&s0_, &s1_}) {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      *s = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t a = s0_, b = s1_;
    uint64_t result = Rotl(a + b, 17) + a;
    b ^= a;
    s0_ = Rotl(a, 49) ^ b ^ (b << 21);
    s1_ = Rotl(b, 28);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    FLATSTORE_DCHECK(n > 0);
    return Next() % n;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s0_, s1_;
};

// Incremental zipfian generator over [0, n), YCSB style: item ranks are
// scrambled with a hash so hot keys are spread across the key space (and
// hence across server cores), exactly as YCSB's ScrambledZipfian does.
class ZipfianGenerator {
 public:
  // `theta` is the zipfian constant (paper/Y CSB default: 0.99).
  ZipfianGenerator(uint64_t n, double theta = 0.99,
                   uint64_t seed = 0x2545F4914F6CDD1DULL)
      : n_(n), theta_(theta), rng_(seed) {
    FLATSTORE_CHECK(n > 0);
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Next rank in [0, n): rank 0 is the hottest item.
  uint64_t NextRank() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  // Next scrambled item id in [0, n): hot ranks hash to arbitrary ids.
  uint64_t Next() { return HashKey(NextRank()) % n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Direct summation; n is the keyspace size, computed once at startup.
    // For large n use the known approximation via the Euler–Maclaurin tail
    // to keep construction O(min(n, 10^6)).
    const uint64_t kExact = 1000000;
    double sum = 0;
    uint64_t limit = n < kExact ? n : kExact;
    for (uint64_t i = 1; i <= limit; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > kExact) {
      // integral of x^-theta from kExact to n.
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(kExact), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_, alpha_, zetan_, zeta2_, eta_;
  Rng rng_;
};

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_RANDOM_H_
