// Latency histogram with logarithmic buckets and percentile queries.
//
// Used by the benchmark harness (Fig. 12 latency/throughput curves) and by
// the network layer's per-connection latency tracking. Values are recorded
// in (simulated) nanoseconds.

#ifndef FLATSTORE_COMMON_HISTOGRAM_H_
#define FLATSTORE_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace flatstore {

// Fixed-size log₂-bucketed histogram: bucket b covers [2^b, 2^(b+1)) ns,
// subdivided into 16 linear sub-buckets for ~6 % resolution.
class Histogram {
 public:
  static constexpr int kLogBuckets = 40;   // up to ~2^40 ns ≈ 18 min
  static constexpr int kSubBuckets = 16;

  Histogram() { Reset(); }

  // Clears all recorded samples.
  void Reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
  }

  // Records one sample (value in ns; 0 is mapped to bucket 0).
  void Record(uint64_t v) {
    counts_[BucketFor(v)]++;
    total_++;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  // Merges another histogram into this one (for per-thread aggregation).
  void Merge(const Histogram& other) {
    for (size_t i = 0; i < counts_.size(); i++) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  // Number of recorded samples.
  uint64_t count() const { return total_; }

  // Arithmetic mean of samples (0 when empty).
  double Mean() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / total_;
  }

  uint64_t min() const { return total_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  // Value at percentile p (0 < p <= 100), approximated by the lower edge
  // of the bucket containing the p-th sample.
  uint64_t Percentile(double p) const {
    if (total_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * total_);
    if (rank >= total_) rank = total_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); i++) {
      seen += counts_[i];
      if (seen > rank) return BucketLowerEdge(i);
    }
    return max_;
  }

 private:
  static size_t BucketFor(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    int log = 63 - __builtin_clzll(v);
    // Sub-bucket index from the 4 bits below the leading bit.
    uint64_t sub = (v >> (log - 4)) & (kSubBuckets - 1);
    size_t idx =
        static_cast<size_t>(log - 3) * kSubBuckets + static_cast<size_t>(sub);
    size_t maxIdx = kLogBuckets * kSubBuckets - 1;
    return idx > maxIdx ? maxIdx : idx;
  }

  static uint64_t BucketLowerEdge(size_t idx) {
    if (idx < kSubBuckets) return idx;
    uint64_t log = idx / kSubBuckets + 3;
    uint64_t sub = idx % kSubBuckets;
    return (1ULL << log) | (sub << (log - 4));
  }

  std::array<uint64_t, kLogBuckets * kSubBuckets> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_HISTOGRAM_H_
