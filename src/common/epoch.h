// Epoch-based reclamation (EBR) for log-entry dereferences.
//
// The serving cores dereference log entries through the volatile index
// (Get, Drain-retire, Scan, BeginDelete) while the log cleaner relocates
// survivors and frees victim chunks. The original design closed the
// read-after-free window with a per-group std::shared_mutex: every
// dereference was an atomic RMW on a lock line shared by the whole group,
// the classic incidental-sharing pattern that swamps the PM-specific
// costs once flushes are batched away.
//
// This manager replaces the lock with classic three-epoch EBR:
//
//  * Read side: a core *pins* the current global epoch by storing it into
//    its own cacheline-aligned slot (plain store, no RMW, no shared-line
//    traffic) before dereferencing, and stores kIdle after. One slot per
//    serving core, claimed implicitly by core id; threads outside the
//    per-core protocol (Scan, Size, tests) claim a guest slot with a CAS
//    — cheap, but off the per-op hot path.
//
//  * Reclaim side: the cleaner unlinks a victim chunk (CAS-swings the
//    index to relocated copies), then hands the physical free to
//    Defer(). The global epoch may advance from E to E+1 only when every
//    pinned slot has observed E; a deferred free recorded in epoch E runs
//    once the global epoch reaches E+2 — by then every reader that could
//    have loaded a pre-unlink pointer has unpinned.
//
// The pin handshake (store slot, then re-check the global epoch and
// re-store if it moved) guarantees the reclaimer either sees the pin or
// the reader sees the newer epoch; both orders are safe. Pinning an
// already-pinned slot is a bug (the inner unpin would strip the outer
// guard's protection) and is DCHECK'd.

#ifndef FLATSTORE_COMMON_EPOCH_H_
#define FLATSTORE_COMMON_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "pm/pm_stats.h"

namespace flatstore {
namespace common {

class EpochManager {
 public:
  // Slot value while not pinned. The global epoch starts at 1 so kIdle
  // can never be confused with a real epoch.
  static constexpr uint64_t kIdle = 0;

  // `owned_slots` are reserved for single-owner contexts (one per serving
  // core, pinned by id with plain stores); `guest_slots` are claimed with
  // a CAS by threads outside the per-core protocol. `stats`, when given,
  // mirrors the reclamation counters (epoch advances, deferred frees,
  // deferred-queue high-water mark) for test/bench introspection.
  explicit EpochManager(int owned_slots, int guest_slots = 16,
                        pm::PmStats* stats = nullptr);
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // ---- read side (hot path) ----

  // Pins `slot` to the current global epoch. The caller must be the
  // slot's single owner and the slot must not already be pinned.
  FS_HOT void Pin(int slot);
  // Ends `slot`'s critical section.
  FS_HOT void Unpin(int slot);

  // Claims and pins a guest slot; returns its id. Aborts if every guest
  // slot is simultaneously pinned (bound the number of concurrent guest
  // readers by `guest_slots`).
  int PinGuest();
  // Unpins and releases a guest slot returned by PinGuest().
  void UnpinGuest(int slot);

  // RAII pin of an owned (per-core) slot.
  class Guard {
   public:
    Guard(EpochManager* m, int slot) : m_(m), slot_(slot) { m_->Pin(slot); }
    ~Guard() { m_->Unpin(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* m_;
    int slot_;
  };

  // RAII claim+pin of a guest slot.
  class GuestGuard {
   public:
    explicit GuestGuard(EpochManager* m) : m_(m), slot_(m->PinGuest()) {}
    ~GuestGuard() { m_->UnpinGuest(slot_); }
    GuestGuard(const GuestGuard&) = delete;
    GuestGuard& operator=(const GuestGuard&) = delete;
    int slot() const { return slot_; }

   private:
    EpochManager* m_;
    int slot_;
  };

  // ---- reclaim side (cleaner path) ----

  // Schedules `fn` to run once every reader active now has moved on (two
  // epoch advances). Callable from any thread.
  void Defer(std::function<void()> fn);

  // Advances the global epoch by one if no pinned slot lags behind it.
  bool TryAdvance();

  // Attempts up to two epoch advances, then runs every deferred function
  // that has become safe. Returns the number of functions run. Callable
  // concurrently from multiple cleaner threads.
  size_t ReclaimDeferred();

  // Best-effort drain for shutdown paths: repeatedly reclaims until the
  // deferred queue empties or `max_rounds` passes make no progress (a
  // reader still pinned). Never blocks indefinitely.
  size_t DrainDeferred(int max_rounds = 8);

  // ---- introspection ----

  uint64_t current_epoch() const {
    return global_.load(std::memory_order_acquire);
  }
  // Epoch a slot is pinned at, or kIdle.
  uint64_t SlotEpoch(int slot) const {
    return slots_[slot].epoch.load(std::memory_order_acquire);
  }
  bool AnyPinned() const;
  size_t deferred_pending() const;
  uint64_t advances() const {
    // relaxed: monotonic stat counter, no ordering required.
    return advances_.load(std::memory_order_relaxed);
  }
  uint64_t deferred_frees() const {
    // relaxed: monotonic stat counter, no ordering required.
    return deferred_frees_.load(std::memory_order_relaxed);
  }
  uint64_t deferred_hwm() const {
    // relaxed: monotonic stat counter, no ordering required.
    return deferred_hwm_.load(std::memory_order_relaxed);
  }
  int owned_slots() const { return owned_slots_; }
  int total_slots() const { return total_slots_; }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  struct DeferredOp {
    uint64_t epoch;
    std::function<void()> fn;
  };

  int owned_slots_;
  int total_slots_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> global_{1};

  // Reclaim side is cold: a mutex-protected FIFO is plenty.
  mutable Mutex deferred_mu_;
  std::deque<DeferredOp> deferred_ GUARDED_BY(deferred_mu_);

  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> deferred_frees_{0};
  std::atomic<uint64_t> deferred_hwm_{0};
  pm::PmStats* stats_;
};

}  // namespace common
}  // namespace flatstore

#endif  // FLATSTORE_COMMON_EPOCH_H_
