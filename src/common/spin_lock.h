// Tiny TTAS spin lock and try-lock used for the horizontal-batching group
// lock and other short critical sections.
//
// The HB protocol (paper §3.3) never blocks on this lock — a core that
// fails TryLock() becomes a follower — so a simple test-and-test-and-set
// lock without queueing is sufficient and matches the paper's "global
// lock" description.

#ifndef FLATSTORE_COMMON_SPIN_LOCK_H_
#define FLATSTORE_COMMON_SPIN_LOCK_H_

#include <atomic>

#include "common/thread_annotations.h"

namespace flatstore {

// A spin lock satisfying the Lockable requirements (usable with
// LockGuard). Not recursive. Declared as a thread-safety capability so
// clang's -Wthread-safety tracks acquisition through lock/try_lock.
class CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  // Acquires the lock, spinning until available.
  void lock() ACQUIRE() {
    while (true) {
      // relaxed: the exchange's acquire ordering publishes the critical
      // section; the inner spin only polls for a release candidate.
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // busy wait; callers hold this lock only for nanoseconds
      }
    }
  }

  // Attempts to acquire the lock; returns true on success.
  bool try_lock() TRY_ACQUIRE(true) {
    // relaxed: the load is only a fast-path filter; acquisition ordering
    // comes from the exchange that follows.
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  // Releases the lock.
  void unlock() RELEASE() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_SPIN_LOCK_H_
