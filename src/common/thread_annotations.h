// Clang thread-safety-analysis annotations + annotated lock wrappers.
//
// The macros expand to clang's `-Wthread-safety` attributes when the
// compiler understands them and to nothing elsewhere (GCC builds see
// plain code). The analyze build (`cmake -DFLATSTORE_ANALYZE=ON` with
// clang, or CI's `analyze` job) compiles with `-Wthread-safety -Werror`,
// turning lock-discipline violations — touching a GUARDED_BY field
// without its capability, returning with a lock held, double-acquire —
// into compile errors.
//
// Conventions used across the engine:
//  * Every lock type is a declared capability: common::SpinLock carries
//    CAPABILITY directly; std::mutex / std::shared_mutex are used through
//    the Mutex / SharedMutex wrappers below.
//  * Scoped acquisition goes through LockGuard / SharedLockGuard (the
//    std guards carry no annotations, so the analysis cannot see them).
//  * Fields a lock protects are GUARDED_BY(lock); functions that expect
//    the caller to hold it are REQUIRES(lock).
//  * Deliberately lock-free fields (atomics with documented protocols,
//    e.g. the epoch pin slots or SPSC ring cursors) are NOT guarded —
//    annotating them would misstate the design. Their protocols are
//    documented at the declaration and checked dynamically by the
//    tsan_smoke suite instead.

#ifndef FLATSTORE_COMMON_THREAD_ANNOTATIONS_H_
#define FLATSTORE_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#define FS_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define FS_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if FS_TSA_HAS_ATTRIBUTE(capability)
#define FS_TSA_ATTR(x) __attribute__((x))
#else
#define FS_TSA_ATTR(x)
#endif

#define CAPABILITY(x) FS_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY FS_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) FS_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) FS_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) FS_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FS_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) FS_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  FS_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) FS_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FS_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FS_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FS_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) FS_TSA_ATTR(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FS_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  FS_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) FS_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FS_TSA_ATTR(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FS_TSA_ATTR(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) FS_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FS_TSA_ATTR(no_thread_safety_analysis)

// Marks a steady-state serving-path function: fs_lint forbids heap
// allocation and blocking lock acquisition inside (PR 1 made these paths
// allocation-free; the lint keeps them that way). try_lock is allowed —
// the HB protocol's leader election never blocks. Waive a finding with
// a hot-ok waiver carrying a reason.
#if defined(__GNUC__) || defined(__clang__)
#define FS_HOT __attribute__((hot))
#else
#define FS_HOT
#endif

namespace flatstore {

// std::mutex as a declared capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  // Escape hatch for APIs that need the raw mutex (std::condition_variable).
  std::mutex& native() RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

// std::shared_mutex as a declared capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Annotated replacement for std::lock_guard / std::unique_lock over any
// declared capability (SpinLock, Mutex, SharedMutex).
template <typename M>
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(M& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& m_;
};

// Annotated replacement for std::shared_lock.
template <typename M>
class SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(M& m) ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~SharedLockGuard() RELEASE_GENERIC() { m_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  M& m_;
};

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_THREAD_ANNOTATIONS_H_
