// Minimal logging and invariant-checking macros.
//
// Modelled on the fatal()/panic() distinction from the gem5 coding style:
//  * CHECK/CHECK_* abort on internal invariant violations (bugs in this
//    library) — the analogue of panic().
//  * FATAL reports unrecoverable *user* errors (bad configuration) and
//    exits with status 1 — the analogue of fatal().
//  * LOG_INFO/LOG_WARN provide status output that never stops execution.

#ifndef FLATSTORE_COMMON_LOGGING_H_
#define FLATSTORE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace flatstore {
namespace internal_logging {

// Terminates the process after printing `msg`; used by CHECK failures.
[[noreturn]] inline void PanicExit(const std::string& msg) {
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream-collecting helper so CHECK(x) << "context" works.
class LogMessageFatal {
 public:
  LogMessageFatal(const char* file, int line, const char* cond) {
    stream_ << "[CHECK FAILED] " << file << ":" << line << ": " << cond;
  }
  [[noreturn]] ~LogMessageFatal() { PanicExit(stream_.str()); }
  std::ostream& stream() { return stream_ << " — "; }

 private:
  std::ostringstream stream_;
};

// Turns the streamed expression into void so the ternary below type-checks
// (the glog "voidify" trick: & binds looser than <<).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace flatstore

// Internal invariant check: aborts (core-dumpable) on failure. Supports
// streaming extra context: FLATSTORE_CHECK(x) << "details".
#define FLATSTORE_CHECK(cond)                                    \
  (cond) ? (void)0                                               \
         : ::flatstore::internal_logging::Voidify() &            \
               ::flatstore::internal_logging::LogMessageFatal(   \
                   __FILE__, __LINE__, #cond)                    \
                   .stream()

#define FLATSTORE_CHECK_EQ(a, b) FLATSTORE_CHECK((a) == (b))
#define FLATSTORE_CHECK_NE(a, b) FLATSTORE_CHECK((a) != (b))
#define FLATSTORE_CHECK_LT(a, b) FLATSTORE_CHECK((a) < (b))
#define FLATSTORE_CHECK_LE(a, b) FLATSTORE_CHECK((a) <= (b))
#define FLATSTORE_CHECK_GT(a, b) FLATSTORE_CHECK((a) > (b))
#define FLATSTORE_CHECK_GE(a, b) FLATSTORE_CHECK((a) >= (b))

// Unrecoverable user error (bad configuration / arguments): exit(1).
#define FLATSTORE_FATAL(...)                                   \
  do {                                                         \
    std::fprintf(stderr, "[FATAL] " __VA_ARGS__);              \
    std::fprintf(stderr, "\n");                                \
    std::exit(1);                                              \
  } while (0)

// Informational / warning messages; never stop execution.
#define FLATSTORE_LOG_INFO(...)                  \
  do {                                           \
    std::fprintf(stderr, "[INFO] " __VA_ARGS__); \
    std::fprintf(stderr, "\n");                  \
  } while (0)

#define FLATSTORE_LOG_WARN(...)                  \
  do {                                           \
    std::fprintf(stderr, "[WARN] " __VA_ARGS__); \
    std::fprintf(stderr, "\n");                  \
  } while (0)

// Debug-only check (compiled out in release unless FLATSTORE_DEBUG_CHECKS).
#ifdef NDEBUG
#define FLATSTORE_DCHECK(cond) \
  while (false) FLATSTORE_CHECK(cond)
#else
#define FLATSTORE_DCHECK(cond) FLATSTORE_CHECK(cond)
#endif

#endif  // FLATSTORE_COMMON_LOGGING_H_
