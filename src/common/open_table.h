// Small open-addressed hash table: uint64 key -> V, linear probing with
// backward-shift deletion.
//
// Built for the serving cores' in-flight key tables, which
// std::unordered_map served poorly: every insert/erase cycle heap-
// allocated and freed a node on the hot path. This table stores entries
// inline in one flat array, and backward-shift deletion (instead of
// tombstones) means the load factor never degrades — so a table
// Reserve()d for its worst-case population performs ZERO heap
// allocations in steady state, no matter how many insert/erase cycles
// run through it.
//
// Not thread-safe; each serving core owns its own instance. V must be
// trivially copyable (entries relocate during backward-shift deletion).

#ifndef FLATSTORE_COMMON_OPEN_TABLE_H_
#define FLATSTORE_COMMON_OPEN_TABLE_H_

#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_annotations.h"

namespace flatstore {
namespace common {

template <typename V>
class OpenTable {
  static_assert(std::is_trivially_copyable_v<V>,
                "backward-shift deletion relocates entries by copy");

 public:
  explicit OpenTable(size_t min_capacity = 16) { Rebuild(min_capacity); }

  OpenTable(const OpenTable&) = delete;
  OpenTable& operator=(const OpenTable&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  // Grows so that `n` entries fit without further allocation (25-75 %
  // peak load). No-op if already large enough.
  void Reserve(size_t n) {
    if (n * 2 > cap_) Rebuild(n * 2);
  }

  // Pointer to the value of `key`, or nullptr.
  FS_HOT V* Find(uint64_t key) {
    const size_t i = FindSlot(key);
    return slots_[i].full ? &slots_[i].value : nullptr;
  }
  const V* Find(uint64_t key) const {
    return const_cast<OpenTable*>(this)->Find(key);
  }

  FS_HOT bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  // Value of `key`, default-constructing it if absent (the analogue of
  // unordered_map::operator[]).
  FS_HOT V& GetOrInsert(uint64_t key) {
    size_t i = FindSlot(key);
    if (slots_[i].full) return slots_[i].value;
    if ((size_ + 1) * 2 > cap_) {
      Rebuild(cap_ * 2);
      i = FindSlot(key);
    }
    slots_[i].full = true;
    slots_[i].key = key;
    slots_[i].value = V{};
    size_++;
    return slots_[i].value;
  }

  // Removes `key`; false if absent. Backward-shift deletion keeps probe
  // chains intact without tombstones.
  FS_HOT bool Erase(uint64_t key) {
    size_t i = FindSlot(key);
    if (!slots_[i].full) return false;
    size_--;
    size_t j = i;
    while (true) {
      slots_[i].full = false;
      while (true) {
        j = (j + 1) & mask_;
        if (!slots_[j].full) return true;
        const size_t home = Home(slots_[j].key);
        // slots_[j] may fill the hole at i unless its home lies
        // cyclically within (i, j] — moving it would break its chain.
        const bool home_in_range =
            (i <= j) ? (i < home && home <= j) : (i < home || home <= j);
        if (!home_in_range) break;
      }
      slots_[i] = slots_[j];
      i = j;
    }
  }

  // Visits every entry (unspecified order). `fn(key, value&)`.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < cap_; i++) {
      if (slots_[i].full) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    V value{};
    bool full = false;
  };

  size_t Home(uint64_t key) const {
    return static_cast<size_t>(HashKey(key, /*seed=*/0x7AB1E)) & mask_;
  }

  // First slot holding `key`, or the empty slot terminating its chain.
  size_t FindSlot(uint64_t key) const {
    size_t i = Home(key);
    while (slots_[i].full && slots_[i].key != key) i = (i + 1) & mask_;
    return i;
  }

  void Rebuild(size_t min_capacity) {
    size_t cap = 16;
    while (cap < min_capacity) cap *= 2;
    std::unique_ptr<Slot[]> old = std::move(slots_);
    const size_t old_cap = cap_;
    slots_.reset(new Slot[cap]);
    cap_ = cap;
    mask_ = cap - 1;
    size_ = 0;
    if (old != nullptr) {
      for (size_t i = 0; i < old_cap; i++) {
        if (old[i].full) GetOrInsert(old[i].key) = old[i].value;
      }
    }
  }

  std::unique_ptr<Slot[]> slots_;
  size_t cap_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace common
}  // namespace flatstore

#endif  // FLATSTORE_COMMON_OPEN_TABLE_H_
