// Cacheline and PM-block geometry constants and alignment helpers.
//
// The paper's core observation is a granularity mismatch: CPUs flush at
// 64 B cacheline granularity while Optane DCPMM internally writes 256 B
// blocks. Every module in this repository reasons about addresses in terms
// of these two units, so they live in one tiny header.

#ifndef FLATSTORE_COMMON_CACHELINE_H_
#define FLATSTORE_COMMON_CACHELINE_H_

#include <cstddef>
#include <cstdint>

namespace flatstore {

// Size of one CPU cacheline — the granularity of clwb/clflushopt.
inline constexpr size_t kCachelineSize = 64;

// Internal write granularity of the emulated Optane DCPMM media
// (the "256 B block" of Izraelevitz et al. and paper §2.2).
inline constexpr size_t kPmBlockSize = 256;

// Rounds `x` down to the start of its cacheline.
constexpr uint64_t CachelineAlignDown(uint64_t x) {
  return x & ~(static_cast<uint64_t>(kCachelineSize) - 1);
}

// Rounds `x` up to the next cacheline boundary (identity if aligned).
constexpr uint64_t CachelineAlignUp(uint64_t x) {
  return (x + kCachelineSize - 1) & ~(static_cast<uint64_t>(kCachelineSize) - 1);
}

// Index of the cacheline containing byte address/offset `x`.
constexpr uint64_t CachelineIndex(uint64_t x) { return x / kCachelineSize; }

// Index of the 256 B PM media block containing byte address/offset `x`.
constexpr uint64_t PmBlockIndex(uint64_t x) { return x / kPmBlockSize; }

// Number of cachelines spanned by the byte range [off, off + len).
constexpr uint64_t CachelineSpan(uint64_t off, uint64_t len) {
  if (len == 0) return 0;
  return CachelineIndex(off + len - 1) - CachelineIndex(off) + 1;
}

// Generic power-of-two alignment helpers.
constexpr uint64_t AlignUp(uint64_t x, uint64_t a) {
  return (x + a - 1) & ~(a - 1);
}
constexpr uint64_t AlignDown(uint64_t x, uint64_t a) { return x & ~(a - 1); }

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_CACHELINE_H_
