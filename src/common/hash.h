// 64-bit hashing used for key routing and every hash index in src/index.
//
// A from-scratch implementation of the XXH64 algorithm (Yann Collet's
// xxHash, public-domain specification). Key routing between server cores,
// CCEH segment selection, Level-Hashing's two hash functions, and Masstree
// fingerprints all derive from these primitives, so the implementation is
// kept header-only for inlining.

#ifndef FLATSTORE_COMMON_HASH_H_
#define FLATSTORE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace flatstore {

namespace hash_internal {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

constexpr uint64_t RotL(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

constexpr uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = RotL(acc, 31);
  acc *= kPrime1;
  return acc;
}

constexpr uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

constexpr uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

inline uint64_t Load64(const void* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const void* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace hash_internal

// XXH64 over an arbitrary byte buffer.
inline uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace hash_internal;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = RotL(v1, 1) + RotL(v2, 7) + RotL(v3, 12) + RotL(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = RotL(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = RotL(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = RotL(h, 11) * kPrime1;
    ++p;
  }
  return Avalanche(h);
}

// Fast path for the 8-byte keys used throughout the paper's evaluation
// (a Fibonacci/xxHash-style finalizer over the raw key).
inline uint64_t HashKey(uint64_t key, uint64_t seed = 0) {
  using namespace hash_internal;
  uint64_t h = seed + kPrime5 + 8;
  h ^= Round(0, key);
  h = RotL(h, 27) * kPrime1 + kPrime4;
  return Avalanche(h);
}

// Second, independent hash function (used by Level-Hashing's two-slot
// scheme and by cuckoo-style displacement).
inline uint64_t HashKey2(uint64_t key) { return HashKey(key, 0x5bd1e995u); }

// One-byte fingerprint used by FPTree leaves.
inline uint8_t Fingerprint8(uint64_t key) {
  return static_cast<uint8_t>(HashKey(key) >> 56) | 1;  // never 0 (0 = empty)
}

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_HASH_H_
