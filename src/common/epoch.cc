#include "common/epoch.h"

#include <utility>
#include <vector>

namespace flatstore {
namespace common {

EpochManager::EpochManager(int owned_slots, int guest_slots,
                           pm::PmStats* stats)
    : owned_slots_(owned_slots),
      total_slots_(owned_slots + guest_slots),
      slots_(new Slot[static_cast<size_t>(owned_slots + guest_slots)]),
      stats_(stats) {
  FLATSTORE_CHECK_GE(owned_slots, 0);
  FLATSTORE_CHECK_GE(guest_slots, 1);
}

EpochManager::~EpochManager() {
  // Deliberately do NOT run leftover deferrals: the objects they free may
  // already be mid-destruction in the owner. Owners drain explicitly
  // (FlatStore::StopCleaners / Shutdown) while their state is alive.
}

FS_HOT void EpochManager::Pin(int slot) {
  FLATSTORE_DCHECK(slot >= 0 && slot < owned_slots_);
  Slot& s = slots_[slot];
  // relaxed: debug-only self-check of the caller's own slot; the seq_cst
  // handshake below provides all cross-thread ordering.
  FLATSTORE_DCHECK(s.epoch.load(std::memory_order_relaxed) == kIdle)
      << "nested pin on slot " << slot;
  // relaxed: only a starting guess; the store/load handshake re-reads
  // global_ with seq_cst until it is stable.
  uint64_t e = global_.load(std::memory_order_relaxed);
  while (true) {
    // seq_cst store/load pair: either the reclaimer's TryAdvance sees
    // this pin, or this load sees the advanced epoch and we re-pin.
    s.epoch.store(e, std::memory_order_seq_cst);
    const uint64_t g = global_.load(std::memory_order_seq_cst);
    if (g == e) return;
    e = g;
  }
}

FS_HOT void EpochManager::Unpin(int slot) {
  FLATSTORE_DCHECK(slot >= 0 && slot < total_slots_);
  // Release: the reads performed inside the critical section happen
  // before any reclaimer that observes the idle slot.
  slots_[slot].epoch.store(kIdle, std::memory_order_release);
}

int EpochManager::PinGuest() {
  // relaxed: starting guess only; the CAS + seq_cst chase below settles it.
  uint64_t e = global_.load(std::memory_order_relaxed);
  for (int i = owned_slots_; i < total_slots_; i++) {
    uint64_t expected = kIdle;
    if (slots_[i].epoch.compare_exchange_strong(
            expected, e, std::memory_order_seq_cst)) {
      // Same handshake as Pin: chase the global epoch until stable.
      while (true) {
        const uint64_t g = global_.load(std::memory_order_seq_cst);
        if (g == e) return i;
        e = g;
        slots_[i].epoch.store(e, std::memory_order_seq_cst);
      }
    }
  }
  FLATSTORE_CHECK(false) << "epoch guest slots exhausted ("
                         << (total_slots_ - owned_slots_)
                         << " concurrent guest readers)";
  return -1;
}

void EpochManager::UnpinGuest(int slot) {
  FLATSTORE_DCHECK(slot >= owned_slots_ && slot < total_slots_);
  Unpin(slot);  // kIdle also releases the claim
}

void EpochManager::Defer(std::function<void()> fn) {
  const uint64_t e = global_.load(std::memory_order_seq_cst);
  size_t depth;
  {
    LockGuard<Mutex> g(deferred_mu_);
    deferred_.push_back({e, std::move(fn)});
    depth = deferred_.size();
  }
  // relaxed: high-water stat; monotonic max maintained by CAS, readers
  // need no ordering with the deferral itself.
  uint64_t hwm = deferred_hwm_.load(std::memory_order_relaxed);
  while (depth > hwm &&
         !deferred_hwm_.compare_exchange_weak(hwm, depth,
                                              std::memory_order_relaxed)) {
  }
  if (stats_ != nullptr) stats_->UpdateEpochDeferredHwm(depth);
}

bool EpochManager::TryAdvance() {
  uint64_t e = global_.load(std::memory_order_seq_cst);
  for (int i = 0; i < total_slots_; i++) {
    const uint64_t v = slots_[i].epoch.load(std::memory_order_seq_cst);
    // A slot pinned at the current epoch does not block the advance (it
    // blocks the *next* one — hence the E+2 free rule); a lagging slot
    // does.
    if (v != kIdle && v != e) return false;
  }
  if (!global_.compare_exchange_strong(e, e + 1,
                                       std::memory_order_seq_cst)) {
    return false;  // another reclaimer advanced first; that still counts
  }
  // relaxed: stat counter, ordering irrelevant.
  advances_.fetch_add(1, std::memory_order_relaxed);
  if (stats_ != nullptr) stats_->AddEpochAdvance();
  return true;
}

size_t EpochManager::ReclaimDeferred() {
  // Two advances promote everything deferred at the pre-call epoch to
  // safety in one pass when no readers lag.
  TryAdvance();
  TryAdvance();
  const uint64_t g = global_.load(std::memory_order_seq_cst);
  std::vector<std::function<void()>> ready;
  {
    LockGuard<Mutex> lk(deferred_mu_);
    while (!deferred_.empty() && deferred_.front().epoch + 2 <= g) {
      ready.push_back(std::move(deferred_.front().fn));
      deferred_.pop_front();
    }
  }
  for (auto& fn : ready) fn();
  if (!ready.empty()) {
    // relaxed: stat counter, ordering irrelevant.
    deferred_frees_.fetch_add(ready.size(), std::memory_order_relaxed);
    if (stats_ != nullptr) stats_->AddDeferredFrees(ready.size());
  }
  return ready.size();
}

size_t EpochManager::DrainDeferred(int max_rounds) {
  size_t total = 0;
  for (int round = 0; round < max_rounds; round++) {
    total += ReclaimDeferred();
    if (deferred_pending() == 0) break;
  }
  return total;
}

bool EpochManager::AnyPinned() const {
  for (int i = 0; i < total_slots_; i++) {
    if (slots_[i].epoch.load(std::memory_order_acquire) != kIdle) {
      return true;
    }
  }
  return false;
}

size_t EpochManager::deferred_pending() const {
  LockGuard<Mutex> g(deferred_mu_);
  return deferred_.size();
}

}  // namespace common
}  // namespace flatstore
