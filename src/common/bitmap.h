// Fixed-capacity bitmap view over caller-owned words.
//
// The lazy-persist allocator places a bitmap at the head of every 4 MB PM
// chunk (paper §3.2). The bitmap words live inside the chunk itself, so
// this class is a *view*: it does not own storage and can be pointed at a
// freshly-recovered chunk header.

#ifndef FLATSTORE_COMMON_BITMAP_H_
#define FLATSTORE_COMMON_BITMAP_H_

#include <cstdint>

#include "common/logging.h"

namespace flatstore {

// View over `WordsFor(nbits)` uint64_t words; bit i set = slot i in use.
class BitmapView {
 public:
  // Number of 8-byte words needed to hold `nbits` bits.
  static constexpr uint64_t WordsFor(uint64_t nbits) {
    return (nbits + 63) / 64;
  }

  BitmapView() = default;
  BitmapView(uint64_t* words, uint64_t nbits) : words_(words), nbits_(nbits) {}

  // Total number of tracked bits.
  uint64_t size() const { return nbits_; }

  // True if bit `i` is set.
  bool Test(uint64_t i) const {
    FLATSTORE_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Sets bit `i`.
  void Set(uint64_t i) {
    FLATSTORE_DCHECK(i < nbits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  // Clears bit `i`.
  void Clear(uint64_t i) {
    FLATSTORE_DCHECK(i < nbits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  // Zeroes the whole bitmap.
  void Reset() {
    for (uint64_t w = 0; w < WordsFor(nbits_); w++) words_[w] = 0;
  }

  // Index of the first clear bit, or `size()` if the bitmap is full.
  uint64_t FindFirstClear() const {
    uint64_t words = WordsFor(nbits_);
    for (uint64_t w = 0; w < words; w++) {
      if (words_[w] != ~0ULL) {
        uint64_t bit = static_cast<uint64_t>(__builtin_ctzll(~words_[w]));
        uint64_t idx = (w << 6) + bit;
        return idx < nbits_ ? idx : nbits_;
      }
    }
    return nbits_;
  }

  // Number of set bits.
  uint64_t CountSet() const {
    uint64_t n = 0;
    uint64_t words = WordsFor(nbits_);
    for (uint64_t w = 0; w < words; w++) {
      uint64_t v = words_[w];
      if (w == words - 1 && (nbits_ & 63) != 0) {
        v &= (1ULL << (nbits_ & 63)) - 1;  // mask tail bits beyond nbits
      }
      n += static_cast<uint64_t>(__builtin_popcountll(v));
    }
    return n;
  }

  // Raw word storage (for persisting the bitmap during clean shutdown).
  uint64_t* words() const { return words_; }

 private:
  uint64_t* words_ = nullptr;
  uint64_t nbits_ = 0;
};

}  // namespace flatstore

#endif  // FLATSTORE_COMMON_BITMAP_H_
