// Lazy-persist NVM allocator (paper §3.2).
//
// A Hoard-like allocator over an emulated PM region:
//
//  * The region is cut into 4 MB chunks. A chunk is either free, a *value
//    chunk* formatted with one size class (all blocks in the chunk have
//    that size), or a *raw chunk* handed out whole (OpLog segments and
//    allocations > 4 MB).
//  * Each chunk head persistently records its size class when formatted
//    ("cutting size"), plus a bitmap of used blocks that is updated
//    **without flushing** during normal operation — that is the paper's
//    key trick. The OpLog already durably holds every live block pointer,
//    so after a crash each bitmap is recomputed: chunk = ptr & ~(4MB-1),
//    block index = (ptr - chunk - header) / class.
//  * Chunks are partitioned across server cores; a core allocates from its
//    privately owned chunks without locks on the fast path. Frees may come
//    from any thread (the log cleaner), so per-chunk spinlocks guard the
//    bitmap.
//  * On multi-socket pools the free chunks are pooled *per socket* (the
//    pool's contiguous socket spans, pm::PmPool::SocketOf): a core refills
//    from its own socket's pool first, so its log segments and value
//    blocks land on local DIMMs; remote pools are only drained when the
//    local one is empty (capacity beats locality). Freed chunks return to
//    the pool of the socket that owns their address.
//
// Size classes are multiples of 256 B so every block offset is 256 B
// aligned — this is what lets the log entry drop the low 8 bits of `Ptr`
// and fit a pointer in 40 bits (paper Fig. 3).

#ifndef FLATSTORE_ALLOC_LAZY_ALLOCATOR_H_
#define FLATSTORE_ALLOC_LAZY_ALLOCATOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitmap.h"
#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "pm/pm_pool.h"

namespace flatstore {
namespace alloc {

// Chunk geometry.
inline constexpr uint64_t kChunkSize = 4ull << 20;
inline constexpr uint64_t kChunkHeaderSize = 4096;  // header + bitmap area
inline constexpr uint64_t kChunkMagic = 0xF1A75702EC0FFEEDull;

// Size classes for value blocks (all > 256 B; multiples of 256 B).
inline constexpr std::array<uint32_t, 11> kSizeClasses = {
    512,    768,    1024,    1536,    2048,   4096,
    8192,   16384,  65536,   262144,  1048576};

// Persistent header at the start of every chunk. `size_class` == 0 marks a
// raw (whole-chunk) allocation; bitmap words follow the fixed fields.
struct ChunkHeader {
  uint64_t magic;
  uint32_t size_class;  // block size in bytes; 0 for raw chunks
  uint32_t owner_core;
  uint64_t bitmap[(kChunkHeaderSize - 16) / 8];
};
static_assert(sizeof(ChunkHeader) == kChunkHeaderSize);

// The allocator. One instance manages one PM region for all cores.
class LazyAllocator {
 public:
  // Manages `region_len` bytes of `pool` starting at `region_off` (both
  // 4 MB aligned) on behalf of `num_cores` server cores.
  LazyAllocator(pm::PmPool* pool, uint64_t region_off, uint64_t region_len,
                int num_cores);

  LazyAllocator(const LazyAllocator&) = delete;
  LazyAllocator& operator=(const LazyAllocator&) = delete;

  // Number of blocks a chunk of class `cls` holds.
  static uint32_t BlocksPerChunk(uint32_t cls) {
    return static_cast<uint32_t>((kChunkSize - kChunkHeaderSize) / cls);
  }

  // Smallest class that can hold `size` bytes, or 0 if size needs raw
  // chunks (> largest class).
  static uint32_t ClassFor(uint64_t size);

  // Allocates at least `size` bytes for `core`. Returns the pool offset of
  // the block (256 B aligned), or 0 on out-of-space. The bitmap update is
  // *not* flushed (lazy persist).
  uint64_t Alloc(int core, uint64_t size);

  // Frees a block previously returned by Alloc. Thread-safe (cleaners free
  // blocks owned by other cores). Not flushed.
  void Free(uint64_t off);

  // Allocates one whole raw chunk for `core` (OpLog segments). The header
  // (magic + class 0 + owner) is persisted. Returns chunk offset or 0.
  uint64_t AllocRawChunk(int core);

  // Returns a raw chunk to the free pool.
  void FreeRawChunk(uint64_t chunk_off);

  // --- recovery (paper §3.5) ---

  // Drops all volatile state and zeroes every bitmap; call before replay.
  void StartRecovery();

  // Marks the block containing `off` live (from a log entry's Ptr). The
  // chunk's persisted size class locates the block. Idempotent.
  void MarkBlockAllocated(uint64_t off);

  // Marks a whole raw chunk live (OpLog segments found via log heads /
  // journal).
  void MarkRawChunkAllocated(uint64_t chunk_off);

  // Rebuilds free lists / per-core ownership after replay.
  void FinishRecovery();

  // --- clean shutdown ---

  // Persists every formatted chunk's bitmap (normal-shutdown path).
  void PersistMetadata();

  // --- cleaner backpressure (§3.4) ---

  // Arms the low-free-space signal: MemoryPressure() reports 1 once the
  // free list shrinks to `n` chunks and 2 at n/4 (imminent exhaustion).
  // 0 disables the signal (the default). The log cleaner polls this to
  // raise its per-quantum byte budget *before* the pool runs dry.
  void SetFreeChunkLowWatermark(uint64_t n);

  // Current pressure level: 0 = fine, 1 = below watermark, 2 = nearly
  // exhausted. Lock-free read of a value maintained at every free-list
  // transition.
  int MemoryPressure() const {
    // relaxed: advisory signal; the cleaner tolerates reading one
    // transition late.
    return pressure_.load(std::memory_order_relaxed);
  }

  // Placement-off mode (the NUMA A/B's baseline arm): ignore each core's
  // home socket and deal free chunks round-robin across sockets,
  // modelling interleaved first-touch allocation — about half of every
  // core's log segments and value blocks end up remote.
  void SetSocketInterleave(bool on) {
    // relaxed: a bench/test-orchestration knob, set before serving.
    interleave_.store(on, std::memory_order_relaxed);
  }

  // --- introspection ---
  uint64_t free_chunks() const;
  // Free chunks homed on `socket` (socket-local pool depth).
  uint64_t free_chunks_on(int socket) const;
  // Socket a core's allocations prefer: cores are laid out contiguously
  // across the pool's sockets (cores [0, n/S) on socket 0, ...), matching
  // the server runtime's clock->socket assignment.
  int SocketForCore(int core) const {
    return core * pool_sockets_ / num_cores_;
  }
  uint64_t total_chunks() const { return num_chunks_; }
  // Bytes of the region currently allocated (blocks + raw chunks).
  uint64_t allocated_bytes() const;

  // True if `off` lies inside a live block/raw chunk (test helper).
  bool IsAllocated(uint64_t off) const;

  pm::PmPool* pool() const { return pool_; }

 private:
  // Volatile per-chunk bookkeeping. Every field is guarded by `lock`:
  // frees arrive from any thread (the log cleaner), and the introspection
  // helpers iterate chunks concurrently with allocation.
  struct ChunkState {
    SpinLock lock;
    uint32_t size_class GUARDED_BY(lock) = 0;  // mirrors persistent header
    uint32_t used GUARDED_BY(lock) = 0;  // live blocks (1 for raw chunks)
    int owner GUARDED_BY(lock) = -1;
    bool formatted GUARDED_BY(lock) = false;  // handed out as value chunk
    bool raw GUARDED_BY(lock) = false;        // handed out as raw chunk
    bool in_partial_list GUARDED_BY(lock) = false;
    uint32_t next_free_hint GUARDED_BY(lock) = 0;
  };

  // Per-core, per-class allocation state. `current` is owned by the
  // core's serving thread (single writer/reader) and deliberately not
  // guarded; `partial` takes pushes from cleaner frees on any thread.
  struct CoreClassState {
    int64_t current = -1;               // chunk id being filled
    SpinLock partial_lock;              // frees may push from cleaners
    std::vector<int64_t> partial GUARDED_BY(partial_lock);
  };

  struct CoreState {
    std::array<CoreClassState, kSizeClasses.size()> classes;
  };

  ChunkHeader* HeaderOf(uint64_t chunk_id) const {
    return pool_->PtrAt<ChunkHeader>(region_off_ + chunk_id * kChunkSize);
  }
  uint64_t ChunkOffset(uint64_t chunk_id) const {
    return region_off_ + chunk_id * kChunkSize;
  }
  int64_t ChunkIdOf(uint64_t off) const {
    return static_cast<int64_t>((off - region_off_) / kChunkSize);
  }
  static size_t ClassIndex(uint32_t cls);

  // Pops a free chunk id, preferring `socket`'s pool and falling back to
  // the other sockets' pools in round order; -1 when every pool is empty.
  // Caller formats it.
  int64_t PopFreeChunk(int socket);

  // Recomputes pressure_ from free_list_.size(); call after every
  // free-list mutation.
  void UpdatePressure() REQUIRES(free_lock_);

  // Formats `chunk` as a value chunk of `cls` for `core` and persists the
  // header fields (not the bitmap).
  void FormatValueChunk(int64_t chunk, uint32_t cls, int core);

  // Allocates one block from the chunk owning `st` (header `h`); the
  // caller holds the chunk lock. Returns the block index or -1 if full.
  int64_t TakeBlock(ChunkState& st, ChunkHeader* h) REQUIRES(st.lock);

  pm::PmPool* pool_;
  uint64_t region_off_;
  uint64_t num_chunks_;
  int num_cores_;
  int pool_sockets_;  // pool_->num_sockets(), cached

  std::vector<std::unique_ptr<ChunkState>> chunks_;
  std::vector<CoreState> cores_;
  mutable SpinLock free_lock_;
  // One free-chunk pool per socket (index = pm::PmPool::SocketOf of the
  // chunk's offset; single-socket pools use only slot 0).
  std::array<std::vector<int64_t>, vt::kMaxSockets> free_lists_
      GUARDED_BY(free_lock_);
  uint64_t free_count_ GUARDED_BY(free_lock_) = 0;
  // Placement-off round-robin state (SetSocketInterleave).
  std::atomic<bool> interleave_{false};
  int interleave_next_ GUARDED_BY(free_lock_) = 0;
  // Backpressure signal (see MemoryPressure). The watermark is atomic so
  // SetFreeChunkLowWatermark need not take free_lock_.
  std::atomic<uint64_t> low_watermark_{0};
  std::atomic<int> pressure_{0};
};

}  // namespace alloc
}  // namespace flatstore

#endif  // FLATSTORE_ALLOC_LAZY_ALLOCATOR_H_
