#include "alloc/lazy_allocator.h"

#include <cstring>

#include "common/cacheline.h"
#include "common/logging.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace alloc {

LazyAllocator::LazyAllocator(pm::PmPool* pool, uint64_t region_off,
                             uint64_t region_len, int num_cores)
    : pool_(pool),
      region_off_(region_off),
      num_chunks_(region_len / kChunkSize),
      num_cores_(num_cores),
      pool_sockets_(pool->num_sockets()),
      cores_(static_cast<size_t>(num_cores)) {
  FLATSTORE_CHECK_EQ(region_off % kChunkSize, 0u);
  // Offset 0 is the "allocation failed" sentinel, so the region must not
  // start at the very beginning of the pool (the superblock lives there).
  FLATSTORE_CHECK_GT(region_off, 0u);
  FLATSTORE_CHECK(num_chunks_ > 0);
  FLATSTORE_CHECK(region_off + region_len <= pool->size());
  chunks_.reserve(num_chunks_);
  // Socket-local pools: each chunk joins the free pool of the socket that
  // owns its address span. Lists are filled back-to-front so pops hand
  // out ascending chunk ids, matching the historical single-list order on
  // 1-socket pools.
  for (uint64_t i = 0; i < num_chunks_; i++) {
    chunks_.push_back(std::make_unique<ChunkState>());
  }
  for (uint64_t i = num_chunks_; i-- > 0;) {
    free_lists_[pool_->SocketOf(ChunkOffset(i))].push_back(
        static_cast<int64_t>(i));
  }
  free_count_ = num_chunks_;
}

uint32_t LazyAllocator::ClassFor(uint64_t size) {
  for (uint32_t cls : kSizeClasses) {
    if (size <= cls) return cls;
  }
  return 0;  // needs a raw chunk
}

size_t LazyAllocator::ClassIndex(uint32_t cls) {
  for (size_t i = 0; i < kSizeClasses.size(); i++) {
    if (kSizeClasses[i] == cls) return i;
  }
  FLATSTORE_CHECK(false) << "unknown size class " << cls;
  return 0;
}

int64_t LazyAllocator::PopFreeChunk(int socket) {
  FLATSTORE_DCHECK(socket >= 0 && socket < pool_sockets_);
  LockGuard<SpinLock> g(free_lock_);
  // Placement-off mode: deal chunks round-robin across sockets instead
  // of honouring the core's home, modelling interleaved first-touch.
  // relaxed: set once at rig construction, read under free_lock_.
  if (pool_sockets_ > 1 &&
      interleave_.load(std::memory_order_relaxed)) {
    socket = interleave_next_;
    interleave_next_ = (interleave_next_ + 1) % pool_sockets_;
  }
  // Local pool first; once it runs dry, steal from the other sockets in
  // round order (capacity beats locality — a remote chunk still works,
  // it just pays the link surcharge on every access).
  for (int d = 0; d < pool_sockets_; d++) {
    std::vector<int64_t>& list = free_lists_[(socket + d) % pool_sockets_];
    if (list.empty()) continue;
    int64_t id = list.back();
    list.pop_back();
    free_count_--;
    UpdatePressure();
    return id;
  }
  return -1;
}

void LazyAllocator::UpdatePressure() {
  // relaxed: advisory signal read by the cleaner's MemoryPressure poll;
  // no ordering is implied with the free-list contents.
  const uint64_t wm = low_watermark_.load(std::memory_order_relaxed);
  int level = 0;
  if (wm > 0) {
    const uint64_t n = free_count_;
    if (n <= wm / 4) {
      level = 2;
    } else if (n <= wm) {
      level = 1;
    }
  }
  // relaxed: advisory signal; see the load above.
  pressure_.store(level, std::memory_order_relaxed);
}

void LazyAllocator::SetFreeChunkLowWatermark(uint64_t n) {
  // relaxed: configuration word; UpdatePressure below republishes the
  // derived level under free_lock_.
  low_watermark_.store(n, std::memory_order_relaxed);
  LockGuard<SpinLock> g(free_lock_);
  UpdatePressure();
}

void LazyAllocator::FormatValueChunk(int64_t chunk, uint32_t cls, int core) {
  ChunkHeader* h = HeaderOf(chunk);
  h->magic = kChunkMagic;
  h->size_class = cls;
  h->owner_core = static_cast<uint32_t>(core);
  // fs-lint: pm-write(bitmap is lazy by design — rebuilt from the log on recovery, paper section 3.2; the header fields are fenced below)
  std::memset(h->bitmap, 0, sizeof(h->bitmap));
  // The paper persists the cutting size when the chunk becomes ready for
  // allocation; the bitmap itself stays lazy.
  pool_->PersistFence(h, 16);

  // The chunk just left the free list, so no other thread allocates from
  // it yet — but the introspection helpers (IsAllocated, allocated_bytes)
  // iterate every chunk under its lock concurrently, so the volatile
  // state must be written under the lock too. (These stores were
  // unlocked before the thread-safety pass.)
  ChunkState& st = *chunks_[chunk];
  LockGuard<SpinLock> g(st.lock);
  st.size_class = cls;
  st.used = 0;
  st.owner = core;
  st.formatted = true;
  st.raw = false;
  st.next_free_hint = 0;
}

int64_t LazyAllocator::TakeBlock(ChunkState& st, ChunkHeader* h) {
  const uint32_t blocks = BlocksPerChunk(st.size_class);
  const uint32_t words = static_cast<uint32_t>(BitmapView::WordsFor(blocks));
  uint32_t w = st.next_free_hint;
  for (uint32_t n = 0; n < words; n++, w = (w + 1) % words) {
    if (h->bitmap[w] == ~0ull) continue;
    uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(~h->bitmap[w]));
    uint32_t idx = w * 64 + bit;
    if (idx >= blocks) continue;  // tail bits of the last word
    // fs-lint: pm-write(the lazy-persist trick, paper section 3.2: the bitmap is never flushed on allocation — the OpLog durably holds every live pointer and recovery recomputes the bitmap)
    h->bitmap[w] |= (1ull << bit);
    st.used++;
    st.next_free_hint = w;
    return idx;
  }
  return -1;
}

uint64_t LazyAllocator::Alloc(int core, uint64_t size) {
  FLATSTORE_DCHECK(core >= 0 && core < num_cores_);
  vt::Charge(2 * vt::kCpuSlotProbe + vt::kCpuCas);
  const uint32_t cls = ClassFor(size);
  if (cls == 0) {
    // Raw-chunk fallback for huge values (rare in KV workloads).
    FLATSTORE_CHECK_LE(size, kChunkSize - kChunkHeaderSize)
        << "multi-chunk values are not supported";
    uint64_t chunk_off = AllocRawChunk(core);
    return chunk_off == 0 ? 0 : chunk_off + kChunkHeaderSize;
  }

  CoreClassState& ccs = cores_[core].classes[ClassIndex(cls)];
  while (true) {
    if (ccs.current < 0) {
      // Refill: a partially-free chunk we own, else a fresh chunk.
      {
        LockGuard<SpinLock> g(ccs.partial_lock);
        while (!ccs.partial.empty() && ccs.current < 0) {
          int64_t cand = ccs.partial.back();
          ccs.partial.pop_back();
          LockGuard<SpinLock> cg(chunks_[cand]->lock);
          chunks_[cand]->in_partial_list = false;
          if (chunks_[cand]->used < BlocksPerChunk(cls)) {
            ccs.current = cand;
          }
        }
      }
      if (ccs.current < 0) {
        int64_t fresh = PopFreeChunk(SocketForCore(core));
        if (fresh < 0) return 0;  // out of PM space
        FormatValueChunk(fresh, cls, core);
        ccs.current = fresh;
      }
    }
    int64_t chunk = ccs.current;
    LockGuard<SpinLock> g(chunks_[chunk]->lock);
    int64_t idx = TakeBlock(*chunks_[chunk], HeaderOf(chunk));
    if (idx >= 0) {
      return ChunkOffset(chunk) + kChunkHeaderSize +
             static_cast<uint64_t>(idx) * cls;
    }
    ccs.current = -1;  // full; try another chunk
  }
}

void LazyAllocator::Free(uint64_t off) {
  vt::Charge(vt::kCpuCas);
  int64_t chunk = ChunkIdOf(off);
  FLATSTORE_CHECK(chunk >= 0 && static_cast<uint64_t>(chunk) < num_chunks_);
  ChunkState& st = *chunks_[chunk];
  // `raw` must be read under the chunk lock like every other ChunkState
  // field (the unlocked fast-path read here predated the thread-safety
  // pass and raced with AllocRawChunk formatting a recycled chunk).
  bool raw;
  {
    LockGuard<SpinLock> g(st.lock);
    raw = st.raw;
  }
  if (raw) {
    FreeRawChunk(ChunkOffset(chunk));
    return;
  }
  ChunkHeader* h = HeaderOf(chunk);
  bool add_partial = false;
  int owner;
  uint32_t cls;
  {
    LockGuard<SpinLock> g(st.lock);
    FLATSTORE_CHECK(st.formatted);
    cls = st.size_class;
    uint64_t idx = (off - ChunkOffset(chunk) - kChunkHeaderSize) / cls;
    FLATSTORE_DCHECK((off - ChunkOffset(chunk) - kChunkHeaderSize) % cls == 0);
    BitmapView bm(h->bitmap, BlocksPerChunk(cls));
    FLATSTORE_CHECK(bm.Test(idx)) << "double free at offset " << off;
    // fs-lint: pm-write(lazy persist: free only clears the volatile-for-now bitmap bit; recovery recomputes it from the log)
    bm.Clear(idx);
    st.used--;
    // Re-expose the chunk to its owner if it was invisible (not anyone's
    // current chunk and not in a partial list).
    if (!st.in_partial_list && st.used + 1 == BlocksPerChunk(cls)) {
      st.in_partial_list = true;
      add_partial = true;
    }
    owner = st.owner;
  }
  if (add_partial) {
    CoreClassState& ccs = cores_[owner].classes[ClassIndex(cls)];
    LockGuard<SpinLock> g(ccs.partial_lock);
    ccs.partial.push_back(chunk);
  }
}

uint64_t LazyAllocator::AllocRawChunk(int core) {
  vt::Charge(vt::kCpuCas);
  int64_t id = PopFreeChunk(SocketForCore(core));
  if (id < 0) return 0;
  ChunkHeader* h = HeaderOf(id);
  h->magic = kChunkMagic;
  h->size_class = 0;
  h->owner_core = static_cast<uint32_t>(core);
  pool_->PersistFence(h, 16);
  ChunkState& st = *chunks_[id];
  LockGuard<SpinLock> g(st.lock);
  st.size_class = 0;
  st.used = 1;
  st.owner = core;
  st.formatted = false;
  st.raw = true;
  return ChunkOffset(id);
}

void LazyAllocator::FreeRawChunk(uint64_t chunk_off) {
  int64_t id = ChunkIdOf(chunk_off);
  {
    ChunkState& st = *chunks_[id];
    LockGuard<SpinLock> g(st.lock);
    FLATSTORE_CHECK(st.raw) << "FreeRawChunk on non-raw chunk";
    st.raw = false;
    st.used = 0;
  }
  LockGuard<SpinLock> g(free_lock_);
  free_lists_[pool_->SocketOf(ChunkOffset(id))].push_back(id);
  free_count_++;
  UpdatePressure();
}

void LazyAllocator::StartRecovery() {
  // Recovery is single-threaded (no serving cores or cleaners run yet),
  // but the locks are taken anyway so the analysis can prove the guarded
  // fields are never touched bare — the cost is irrelevant off-line.
  {
    LockGuard<SpinLock> g(free_lock_);
    for (auto& list : free_lists_) list.clear();
    free_count_ = 0;
    UpdatePressure();
  }
  for (auto& core : cores_) {
    for (auto& ccs : core.classes) {
      ccs.current = -1;
      LockGuard<SpinLock> g(ccs.partial_lock);
      ccs.partial.clear();
    }
  }
  for (uint64_t i = 0; i < num_chunks_; i++) {
    ChunkState& st = *chunks_[i];
    LockGuard<SpinLock> g(st.lock);
    st.size_class = 0;
    st.used = 0;
    st.owner = -1;
    st.formatted = false;
    st.raw = false;
    st.in_partial_list = false;
    st.next_free_hint = 0;
    // Bitmaps are reconstructed from the log; drop whatever survived.
    // fs-lint: pm-write(recovery-time bitmap scrub: replay re-marks live blocks, then PersistMetadata or further lazy operation governs durability)
    std::memset(HeaderOf(i)->bitmap, 0, sizeof(ChunkHeader::bitmap));
  }
}

void LazyAllocator::MarkBlockAllocated(uint64_t off) {
  int64_t chunk = ChunkIdOf(off);
  FLATSTORE_CHECK(chunk >= 0 && static_cast<uint64_t>(chunk) < num_chunks_);
  ChunkHeader* h = HeaderOf(chunk);
  FLATSTORE_CHECK_EQ(h->magic, kChunkMagic);
  ChunkState& st = *chunks_[chunk];
  if (h->size_class == 0) {
    MarkRawChunkAllocated(ChunkOffset(chunk));
    return;
  }
  LockGuard<SpinLock> g(st.lock);
  st.formatted = true;
  st.size_class = h->size_class;
  st.owner = static_cast<int>(h->owner_core) % num_cores_;
  uint64_t idx = (off - ChunkOffset(chunk) - kChunkHeaderSize) / h->size_class;
  BitmapView bm(h->bitmap, BlocksPerChunk(h->size_class));
  if (!bm.Test(idx)) {
    // fs-lint: pm-write(replay re-marks a live block in the lazy bitmap; durability comes from the log entry being replayed, not the bitmap)
    bm.Set(idx);
    st.used++;
  }
}

void LazyAllocator::MarkRawChunkAllocated(uint64_t chunk_off) {
  int64_t chunk = ChunkIdOf(chunk_off);
  ChunkHeader* h = HeaderOf(chunk);
  ChunkState& st = *chunks_[chunk];
  LockGuard<SpinLock> g(st.lock);
  st.raw = true;
  st.used = 1;
  st.owner = static_cast<int>(h->owner_core) % num_cores_;
}

void LazyAllocator::FinishRecovery() {
  LockGuard<SpinLock> g(free_lock_);
  for (uint64_t i = 0; i < num_chunks_; i++) {
    ChunkState& st = *chunks_[i];
    LockGuard<SpinLock> cg(st.lock);
    if (st.raw) continue;
    if (st.formatted && st.used > 0) {
      st.in_partial_list = true;
      CoreClassState& ccs =
          cores_[st.owner].classes[ClassIndex(st.size_class)];
      LockGuard<SpinLock> pg(ccs.partial_lock);
      ccs.partial.push_back(static_cast<int64_t>(i));
    } else {
      st.formatted = false;
      free_lists_[pool_->SocketOf(ChunkOffset(i))].push_back(
          static_cast<int64_t>(i));
      free_count_++;
    }
  }
  UpdatePressure();
}

void LazyAllocator::PersistMetadata() {
  for (uint64_t i = 0; i < num_chunks_; i++) {
    ChunkState& st = *chunks_[i];
    LockGuard<SpinLock> cg(st.lock);
    if (st.formatted) {
      pool_->Persist(HeaderOf(i), sizeof(ChunkHeader));
    }
  }
  pool_->Fence();
}

uint64_t LazyAllocator::free_chunks() const {
  LockGuard<SpinLock> g(free_lock_);
  return free_count_;
}

uint64_t LazyAllocator::free_chunks_on(int socket) const {
  FLATSTORE_CHECK(socket >= 0 && socket < pool_sockets_);
  LockGuard<SpinLock> g(free_lock_);
  return free_lists_[socket].size();
}

uint64_t LazyAllocator::allocated_bytes() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < num_chunks_; i++) {
    ChunkState& st = *chunks_[i];
    LockGuard<SpinLock> g(st.lock);
    if (st.raw) {
      total += kChunkSize;
    } else if (st.formatted) {
      total += static_cast<uint64_t>(st.used) * st.size_class;
    }
  }
  return total;
}

bool LazyAllocator::IsAllocated(uint64_t off) const {
  int64_t chunk = ChunkIdOf(off);
  if (chunk < 0 || static_cast<uint64_t>(chunk) >= num_chunks_) return false;
  ChunkState& st = *chunks_[chunk];
  LockGuard<SpinLock> g(st.lock);
  if (st.raw) return true;
  if (!st.formatted) return false;
  uint64_t rel = off - ChunkOffset(chunk);
  if (rel < kChunkHeaderSize) return false;
  uint64_t idx = (rel - kChunkHeaderSize) / st.size_class;
  if (idx >= BlocksPerChunk(st.size_class)) return false;
  BitmapView bm(HeaderOf(chunk)->bitmap, BlocksPerChunk(st.size_class));
  return bm.Test(idx);
}

}  // namespace alloc
}  // namespace flatstore
