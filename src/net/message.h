// Wire messages of the FlatRPC simulation (paper §4.3).
//
// A client "RDMA-writes" a Request directly into the per-(connection,
// core) message buffer of the chosen server core; responses flow back the
// same way. Simulated timestamps ride in the messages: `post_time` is the
// client's clock at the doorbell, `nic_time` is the server-side moment the
// response verb reached the NIC — the virtual-time analogue of the
// paper's hardware timestamps.

#ifndef FLATSTORE_NET_MESSAGE_H_
#define FLATSTORE_NET_MESSAGE_H_

#include <cstdint>

namespace flatstore {
namespace net {

// Largest value payload carried inline in a message (the ETC large class
// tops out at 4 KB in this reproduction).
inline constexpr uint32_t kMaxMsgValue = 4096;

// kTxn carries an atomic multi-op transaction (§5.3) encoded into the
// request's value bytes (core/txn_wire.h). kScan is a range read: the
// request's value_len field carries the scan length (keys wanted from
// `key` upward); the response returns the number found in its value
// bytes — the simulation accounts the per-item read work on the serving
// core but does not stream the scanned values back.
enum class MsgType : uint8_t {
  kPut = 1,
  kGet = 2,
  kDelete = 3,
  kTxn = 4,
  kScan = 5,
};

enum class MsgStatus : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCasMismatch = 2,  // a kTxn compare-and-swap failed; nothing applied
  kUnsupported = 3,  // engine has no txn support / undecodable txn
};

// Client -> server-core request.
struct Request {
  MsgType type;
  uint8_t pad[3];
  uint32_t value_len;
  uint64_t key;
  uint64_t seq;        // per-connection request id
  uint64_t post_time;  // client simulated ns at post
  uint8_t value[kMaxMsgValue];
};

// Server-core -> client response.
struct Response {
  MsgStatus status;
  MsgType type;
  uint8_t pad[2];
  uint32_t value_len;
  uint64_t seq;
  uint64_t nic_time;  // simulated ns the response verb reached the NIC
  uint8_t value[kMaxMsgValue];
};

}  // namespace net
}  // namespace flatstore

#endif  // FLATSTORE_NET_MESSAGE_H_
