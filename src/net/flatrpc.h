// FlatRPC — the paper's RDMA RPC layer (§4.3), simulated.
//
// Topology: every client connection can write a request into the message
// buffer of *any* server core (one SPSC ring per (connection, core) per
// direction), but NIC queue-pair state is what actually scales — and that
// is what the model meters:
//
//  * FlatRPC mode: one QP per connection. Responses from non-agent cores
//    are delegated through shared memory to the agent core (core 0, "the
//    socket close to the NIC"), which serializes the MMIO doorbells but
//    posts them cheaply.
//  * all-to-all mode: every (connection, core) pair owns a QP; every core
//    posts its own MMIO doorbells directly, and the NIC's QP cache
//    (vt::kNicQpCacheEntries) starts missing once connections × cores
//    exceeds it — each message then pays a connection-state fetch.
//
// This reproduces the §4.3 result that FlatRPC beats the all-to-all
// arrangement once clients scale (the paper reports 1.5x).

#ifndef FLATSTORE_NET_FLATRPC_H_
#define FLATSTORE_NET_FLATRPC_H_

#include <atomic>
#include <memory>
#include <vector>

#include "net/message.h"
#include "net/ring.h"
#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace net {

// NIC-side model: QP cache pressure + the agent core's doorbell resource.
class NicModel {
 public:
  explicit NicModel(int active_qps);

  // Expected per-message cost of fetching QP state (0 while the working
  // set fits the QP cache; the miss fraction of the miss penalty beyond).
  uint64_t PerMessageCost() const { return per_message_cost_; }

  // Posts a response verb directly (agent core, or any core in all-to-all
  // mode) at simulated time `now`; returns the verb's NIC arrival time.
  uint64_t PostDirect(uint64_t now) const {
    return now + vt::kMmioPostCost + per_message_cost_;
  }

  // Posts through the agent core: the handoff is cheap for the sender,
  // but verbs serialize on the agent (a shared simulated resource).
  uint64_t PostDelegated(uint64_t now);

  int active_qps() const { return active_qps_; }

 private:
  int active_qps_;
  uint64_t per_message_cost_;
  std::atomic<uint64_t> agent_busy_{0};
};

// The RPC fabric between `num_conns` client connections and `num_cores`
// server cores.
class FlatRpc {
 public:
  struct Options {
    int num_cores = 4;
    int num_conns = 8;
    // false: FlatRPC (1 QP/connection, delegated responses);
    // true: all-to-all QPs, direct responses from every core.
    bool all_to_all = false;
  };

  explicit FlatRpc(const Options& options);

  // --- client side (single thread per connection) ---

  // Writes a request into `core`'s buffer; false when the ring is full.
  // Charges the client's posting cost to the calling clock.
  bool PostRequest(int conn, int core, const Request& request);

  // Polls this connection's response buffers; true if one was delivered
  // into `*out`.
  bool PollResponse(int conn, Response* out);

  // --- server side (single thread per core) ---

  // Round-robin poll of `core`'s request buffers. Returns the message (and
  // its connection through `*conn`) or nullptr. The message stays valid
  // until PopRequest.
  Request* PollRequest(int core, int* conn);
  void PopRequest(int core, int conn);

  // Like PollRequest but returns the pending head with the *earliest*
  // post time instead of the round-robin pick. Open-loop serving uses
  // this so a core admits requests in arrival order — with scheduled
  // (future-stamped) arrivals, round-robin could jump the core's clock
  // past another connection's earlier request and report queueing delay
  // that never happened. Alloc-free.
  Request* PollEarliestRequest(int core, int* conn);

  // Stamps `request`'s response with its NIC time (direct vs. delegated
  // depending on the mode and whether `core` is the agent) and delivers
  // it. Charges the posting costs to the calling clock. `not_before` is
  // the earliest simulated instant the response content exists (a
  // pipelined-HB batch's completion time) — the verb cannot precede it.
  // `chained` appends the verb to the doorbell chain that the previous
  // (unchained) PostResponse of this burst opened: the WQE build is
  // charged, but the MMIO doorbell / agent handoff is shared with the
  // chain head (doorbell batching — the server-side analogue of the
  // client's batched posting, §5 "client batchsize").
  void PostResponse(int core, int conn, Response* response,
                    uint64_t not_before = 0, bool chained = false);

  // Simulated arrival time of `request` at the server (client post +
  // one-way latency + QP-state fetch).
  uint64_t ArrivalTime(const Request& request) const {
    return request.post_time + vt::kNetOneWay + nic_.PerMessageCost();
  }

  // Simulated arrival time of `response` back at the client.
  static uint64_t ResponseArrival(const Response& response) {
    return response.nic_time + vt::kNetOneWay;
  }

  NicModel& nic() { return nic_; }
  int num_cores() const { return options_.num_cores; }
  int num_conns() const { return options_.num_conns; }

  // True when every ring in the fabric is empty (shutdown check).
  bool Quiescent() const;

 private:
  static constexpr size_t kRingSlots = 8;
  using RequestRing = SpscRing<Request, kRingSlots>;
  using ResponseRing = SpscRing<Response, kRingSlots>;

  RequestRing& ReqRing(int conn, int core) const {
    return *req_rings_[static_cast<size_t>(conn) *
                           static_cast<size_t>(options_.num_cores) +
                       static_cast<size_t>(core)];
  }
  ResponseRing& RespRing(int conn, int core) const {
    return *resp_rings_[static_cast<size_t>(conn) *
                            static_cast<size_t>(options_.num_cores) +
                        static_cast<size_t>(core)];
  }

  Options options_;
  NicModel nic_;
  std::vector<std::unique_ptr<RequestRing>> req_rings_;
  std::vector<std::unique_ptr<ResponseRing>> resp_rings_;
  std::vector<int> poll_cursor_;       // per core (server side)
  std::vector<int> response_cursor_;   // per conn (client side)
};

}  // namespace net
}  // namespace flatstore

#endif  // FLATSTORE_NET_FLATRPC_H_
