#include "net/shard_router.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace flatstore {
namespace net {

ShardRouter::ShardRouter(int vnodes, uint64_t seed)
    : vnodes_(vnodes), seed_(seed) {
  FLATSTORE_CHECK_GE(vnodes_, 1);
}

uint64_t ShardRouter::PointHash(int shard, int replica) const {
  // One well-mixed point per (shard, replica); the shard id sits in the
  // high half so nearby ids do not collide before hashing.
  return HashKey((static_cast<uint64_t>(static_cast<uint32_t>(shard)) << 32) |
                     static_cast<uint32_t>(replica),
                 seed_);
}

bool ShardRouter::HasShard(int shard) const {
  for (const Point& p : ring_) {
    if (p.shard == shard) return true;
  }
  return false;
}

void ShardRouter::AddShard(int shard) {
  if (HasShard(shard)) return;
  for (int r = 0; r < vnodes_; r++) {
    ring_.push_back({PointHash(shard, r), shard});
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              // Tie-break on shard id so the ring order — and therefore
              // routing — never depends on insertion order.
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
  num_shards_++;
}

void ShardRouter::RemoveShard(int shard) {
  const size_t before = ring_.size();
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [shard](const Point& p) {
                               return p.shard == shard;
                             }),
              ring_.end());
  if (ring_.size() != before) num_shards_--;
}

int ShardRouter::ShardForKey(uint64_t key) const {
  if (ring_.empty()) return -1;
  const uint64_t h = HashKey(key, seed_);
  // First point clockwise of h; wrap to the ring start past the last.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), h,
                             [](const Point& p, uint64_t hash) {
                               return p.hash < hash;
                             });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

}  // namespace net
}  // namespace flatstore
