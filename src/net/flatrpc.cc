#include "net/flatrpc.h"

#include <algorithm>

#include "common/logging.h"

namespace flatstore {
namespace net {

NicModel::NicModel(int active_qps) : active_qps_(active_qps) {
  // Deterministic expected miss cost: once the QP working set exceeds the
  // cache, a (qps - cache)/qps fraction of messages fetches state.
  if (active_qps_ <= vt::kNicQpCacheEntries) {
    per_message_cost_ = 0;
  } else {
    const double miss =
        1.0 - static_cast<double>(vt::kNicQpCacheEntries) / active_qps_;
    per_message_cost_ =
        static_cast<uint64_t>(miss * vt::kQpCacheMissCost);
  }
}

uint64_t NicModel::PostDelegated(uint64_t now) {
  // Verb commands from all cores funnel through the agent core. The
  // agent's *cost* is charged per verb; strict FIFO serialization across
  // per-core virtual clocks is deliberately NOT modelled — chaining a
  // shared busy timestamp through unsynchronized clocks ratchets every
  // core to the maximum clock and fabricates serialization (the verbs are
  // a few bytes and the paper measures the delegation as cheap).
  return now + vt::kAgentMmioCost + per_message_cost_;
}

FlatRpc::FlatRpc(const Options& options)
    : options_(options),
      nic_(options.all_to_all ? options.num_conns * options.num_cores
                              : options.num_conns) {
  FLATSTORE_CHECK_GE(options_.num_cores, 1);
  FLATSTORE_CHECK_GE(options_.num_conns, 1);
  const size_t n = static_cast<size_t>(options_.num_conns) *
                   static_cast<size_t>(options_.num_cores);
  req_rings_.reserve(n);
  resp_rings_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    req_rings_.push_back(std::make_unique<RequestRing>());
    resp_rings_.push_back(std::make_unique<ResponseRing>());
  }
  poll_cursor_.assign(static_cast<size_t>(options_.num_cores), 0);
  response_cursor_.assign(static_cast<size_t>(options_.num_conns), 0);
}

bool FlatRpc::PostRequest(int conn, int core, const Request& request) {
  if (!ReqRing(conn, core).Push(request)) return false;
  vt::Charge(vt::kClientPostCost);
  return true;
}

bool FlatRpc::PollResponse(int conn, Response* out) {
  int& cur = response_cursor_[conn];
  for (int i = 0; i < options_.num_cores; i++) {
    int core = (cur + i) % options_.num_cores;
    ResponseRing& ring = RespRing(conn, core);
    if (Response* r = ring.Front()) {
      *out = *r;
      ring.Pop();
      cur = (core + 1) % options_.num_cores;
      return true;
    }
  }
  return false;
}

Request* FlatRpc::PollRequest(int core, int* conn) {
  int& cur = poll_cursor_[core];
  for (int i = 0; i < options_.num_conns; i++) {
    int c = (cur + i) % options_.num_conns;
    if (Request* r = ReqRing(c, core).Front()) {
      *conn = c;
      cur = (c + 1) % options_.num_conns;
      return r;
    }
  }
  // Empty polls are free: simulated time is event-driven, and a spinning
  // host thread must not inflate its core's clock.
  return nullptr;
}

void FlatRpc::PopRequest(int core, int conn) {
  ReqRing(conn, core).Pop();
}

Request* FlatRpc::PollEarliestRequest(int core, int* conn) {
  Request* best = nullptr;
  int best_conn = -1;
  for (int c = 0; c < options_.num_conns; c++) {
    Request* r = ReqRing(c, core).Front();
    if (r != nullptr &&
        (best == nullptr || r->post_time < best->post_time)) {
      best = r;
      best_conn = c;
    }
  }
  if (best != nullptr) *conn = best_conn;
  return best;
}

void FlatRpc::PostResponse(int core, int conn, Response* response,
                           uint64_t not_before, bool chained) {
  const uint64_t now = std::max(vt::Now(), not_before);
  if (chained) {
    // Doorbell chaining: this verb rides the burst head's doorbell (or
    // delegated handoff), paying only the WQE build.
    vt::Charge(vt::kDoorbellChainCost);
    response->nic_time = now + vt::kDoorbellChainCost +
                         nic_.PerMessageCost();
  } else if (options_.all_to_all || core == 0) {
    // Agent core itself (or all-to-all mode): direct MMIO doorbell.
    vt::Charge(vt::kMmioPostCost);
    response->nic_time = nic_.PostDirect(now);
  } else {
    // Delegate the verb to the agent through shared memory (§4.3):
    // cheap for this core; the verb serializes on the agent.
    vt::Charge(vt::kDelegateHandoffCost);
    response->nic_time = nic_.PostDelegated(now + vt::kDelegateHandoffCost);
  }
  // Delivery: the ring is sized so that a client with a bounded request
  // window can never overflow its response ring.
  bool ok = RespRing(conn, core).Push(*response);
  FLATSTORE_CHECK(ok) << "response ring overflow (window > ring slots?)";
}

bool FlatRpc::Quiescent() const {
  for (const auto& r : req_rings_) {
    if (!r->Empty()) return false;
  }
  for (const auto& r : resp_rings_) {
    if (!r->Empty()) return false;
  }
  return true;
}

}  // namespace net
}  // namespace flatstore
