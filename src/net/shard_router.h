// Consistent-hash shard router.
//
// The scale-out deployment runs N independent FlatStore instances
// (shards), each with its own PM pool, log, and serving cores. Clients
// route every key through this ring: each shard contributes `vnodes`
// pseudo-random points on a 64-bit hash circle, and a key belongs to the
// first point clockwise of its hash. Properties the tests pin down:
//
//  * stability — adding or removing one shard moves only the keys that
//    hash into the arcs the changed shard's vnodes cover, roughly a
//    1/N fraction; every other key keeps its shard. (Modulo routing
//    would reshuffle nearly everything.)
//  * determinism — the ring is a pure function of (shard ids, vnodes,
//    seed); two routers built with the same parameters agree on every
//    key, so clients need no coordination.
//  * alloc-free lookups — the ring is a sorted flat vector and
//    ShardForKey is one hash plus a binary search; no heap traffic on
//    the per-request path (hotpath_alloc_test covers this).
//
// The router is client-side, mutated only between runs; lookups are
// const and safe to share across simulated client threads.

#ifndef FLATSTORE_NET_SHARD_ROUTER_H_
#define FLATSTORE_NET_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

namespace flatstore {
namespace net {

class ShardRouter {
 public:
  // `vnodes` points per shard; more vnodes = smoother balance and finer
  // movement granularity on membership change. `seed` decorrelates the
  // ring from every other hash in the system (key routing, index
  // buckets).
  explicit ShardRouter(int vnodes = 64, uint64_t seed = 0x51A2D);

  // Adds / removes a shard id (idempotent: re-adding an existing id or
  // removing an absent one is a no-op). O(ring size log ring size).
  void AddShard(int shard);
  void RemoveShard(int shard);

  // Shard owning `key`, or -1 on an empty ring. Allocation-free.
  int ShardForKey(uint64_t key) const;

  int num_shards() const { return num_shards_; }
  bool HasShard(int shard) const;
  int vnodes() const { return vnodes_; }

 private:
  struct Point {
    uint64_t hash;
    int shard;
  };

  uint64_t PointHash(int shard, int replica) const;

  int vnodes_;
  uint64_t seed_;
  int num_shards_ = 0;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace net
}  // namespace flatstore

#endif  // FLATSTORE_NET_SHARD_ROUTER_H_
