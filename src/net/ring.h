// Single-producer / single-consumer message ring.
//
// Emulates one RDMA-write message buffer: the producer (a client
// connection, or a server core posting responses) writes slots that the
// consumer polls. One ring exists per (connection, core) per direction,
// so both endpoints of every ring are single-threaded.

#ifndef FLATSTORE_NET_RING_H_
#define FLATSTORE_NET_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/thread_annotations.h"

namespace flatstore {
namespace net {

// Fixed-capacity SPSC ring. N must be a power of two.
template <typename T, size_t N>
class SpscRing {
  static_assert((N & (N - 1)) == 0, "capacity must be a power of two");

 public:
  SpscRing() : slots_(new T[N]) {}
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer: copies `v` in; false when full.
  FS_HOT bool Push(const T& v) {
    // relaxed: head_ is producer-owned; only the producer writes it.
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) == N) return false;
    slots_[h & (N - 1)] = v;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Consumer: pointer to the oldest message, or nullptr when empty. The
  // slot stays valid until Pop().
  FS_HOT T* Front() {
    // relaxed: tail_ is consumer-owned; only the consumer writes it.
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (head_.load(std::memory_order_acquire) == t) return nullptr;
    return &slots_[t & (N - 1)];
  }

  // Consumer: releases the slot returned by Front().
  FS_HOT void Pop() {
    // relaxed: tail_ is consumer-owned; only the consumer writes it.
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
  std::unique_ptr<T[]> slots_;
};

}  // namespace net
}  // namespace flatstore

#endif  // FLATSTORE_NET_RING_H_
