// Virtual time: per-core simulated clocks.
//
// The paper's evaluation ran on a 36-core Optane testbed; this repository
// runs anywhere (including single-CPU CI machines) by accounting time in
// *simulated nanoseconds* instead of wall-clock time. Each simulated server
// core / client connection owns a Clock. All modelled costs — PM flush
// service, CPU work proportional to real algorithmic effort, network hops —
// advance the clock of whichever core performed the work. Synchronization
// between cores transfers timestamps: e.g., a horizontal-batching follower
// advances its clock to the leader's batch-completion time.
//
// Code that may run either inside a simulated core or in a plain unit test
// charges costs through the thread-local *current clock*; when no clock is
// bound the charge is a no-op, so substrate code (indexes, allocator, log)
// is usable stand-alone.

#ifndef FLATSTORE_VT_CLOCK_H_
#define FLATSTORE_VT_CLOCK_H_

#include <algorithm>
#include <cstdint>

#include "vt/costs.h"

namespace flatstore {
namespace vt {

// Home-socket sentinels for structures whose placement is not pinned to
// one socket. kSocketNone (the default everywhere) means "socket-agnostic"
// — no remote surcharge is ever applied, preserving the single-socket
// model exactly. kSocketInterleaved marks memory striped across every
// socket (the placement-off A/B): a deterministic fraction of accesses is
// remote regardless of the executing core.
inline constexpr int kSocketNone = -1;
inline constexpr int kSocketInterleaved = -2;

// A simulated-nanosecond clock for one execution context. Not thread-safe:
// exactly one host thread drives a given Clock at a time.
class Clock {
 public:
  // Current simulated time in ns.
  uint64_t now() const { return now_; }

  // The socket this execution context runs on (0 on single-socket
  // machines). Set once by whoever owns the core layout (the server
  // runtime); charges consult it through vt::CurrentSocket().
  int socket() const { return socket_; }
  void set_socket(int socket) { socket_ = socket; }

  // Advances by `ns` of simulated work.
  void Advance(uint64_t ns) { now_ += ns; }

  // Advances to at least `t` (models waiting for an event that completes
  // at simulated time `t`; no-op if `t` is in the past).
  void AdvanceTo(uint64_t t) { now_ = std::max(now_, t); }

  // Outstanding asynchronous-flush completion horizon (see PmPool): the
  // latest device-completion timestamp of clwb-style flushes issued but not
  // yet fenced. Fence() advances now() to this value.
  uint64_t pending_fence() const { return pending_fence_; }
  void RaisePendingFence(uint64_t t) {
    pending_fence_ = std::max(pending_fence_, t);
  }
  void ClearPendingFence() { pending_fence_ = 0; }

  // Resets the clock to zero (between benchmark phases).
  void Reset() {
    now_ = 0;
    pending_fence_ = 0;
  }

 private:
  uint64_t now_ = 0;
  uint64_t pending_fence_ = 0;
  int socket_ = 0;
};

// Returns the clock bound to this host thread, or nullptr.
Clock* CurrentClock();

// Binds `c` (may be nullptr) to this host thread; returns the old binding.
Clock* SetCurrentClock(Clock* c);

// Socket of the bound clock, or 0 when none is bound (plain unit tests
// behave as single-socket machines).
inline int CurrentSocket() {
  Clock* c = CurrentClock();
  return c ? c->socket() : 0;
}

// Extra per-cacheline stall for accessing memory homed on `home_socket`
// from the current execution context. kSocketNone is free (socket-
// agnostic memory, the single-socket model); kSocketInterleaved charges
// half the penalty — the deterministic expectation of striped placement
// on a 2-socket machine; a concrete socket charges the full penalty iff
// it differs from the executing core's.
inline uint64_t RemoteLoadSurcharge(int home_socket) {
  if (home_socket == kSocketNone) return 0;
  if (home_socket == kSocketInterleaved) return kRemoteSocketLoadPenalty / 2;
  return home_socket == CurrentSocket() ? 0 : kRemoteSocketLoadPenalty;
}

// Advances the current clock by `ns`; no-op when none is bound.
inline void Charge(uint64_t ns) {
  if (Clock* c = CurrentClock()) c->Advance(ns);
}

// Current simulated time, or 0 when no clock is bound.
inline uint64_t Now() {
  Clock* c = CurrentClock();
  return c ? c->now() : 0;
}

// ---- interleaved-lookup overlap (the MultiGet prefetch pipeline) ------
//
// While a batched read interleaves independent, prefetch-covered lookup
// chains, cache-miss-class charges are amortized across the chains
// instead of summing their full latencies. The factor is thread-local,
// like the clock binding: 1 (the default) means serial execution and
// leaves every charge untouched.

// Overlap factor active on this thread (>= 1).
int CurrentOverlap();

// Sets the overlap factor; returns the previous value.
int SetCurrentOverlap(int ways);

// Advances the current clock by one cache-miss-class stall, amortized by
// the active overlap factor (full latency when serial).
inline void ChargeMiss(uint64_t miss) {
  Charge(OverlappedMissCost(CurrentOverlap(), miss));
}

// ChargeMiss for memory homed on `home_socket`: a remote line stalls for
// the miss plus the inter-socket link. The surcharge rides inside the
// overlapped cost — remote loads pipeline across interleaved chains just
// like local ones, only with a longer round trip.
inline void ChargeMissAt(int home_socket, uint64_t miss) {
  ChargeMiss(miss + RemoteLoadSurcharge(home_socket));
}

// RAII overlap window. MultiGet opens one for its prefetch + probe
// phases; un-hinted fallback probes open a ScopedOverlap(1) inside it so
// they cannot free-ride on a batch they did not prefetch for.
class ScopedOverlap {
 public:
  explicit ScopedOverlap(int ways) : prev_(SetCurrentOverlap(ways)) {}
  ~ScopedOverlap() { SetCurrentOverlap(prev_); }
  ScopedOverlap(const ScopedOverlap&) = delete;
  ScopedOverlap& operator=(const ScopedOverlap&) = delete;

 private:
  int prev_;
};

// RAII binding of the current thread to a clock.
class ScopedClock {
 public:
  explicit ScopedClock(Clock* c) : prev_(SetCurrentClock(c)) {}
  ~ScopedClock() { SetCurrentClock(prev_); }
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  Clock* prev_;
};

}  // namespace vt
}  // namespace flatstore

#endif  // FLATSTORE_VT_CLOCK_H_
