#include "vt/clock.h"

namespace flatstore {
namespace vt {

namespace {
thread_local Clock* g_current_clock = nullptr;
thread_local int g_current_overlap = 1;
}  // namespace

Clock* CurrentClock() { return g_current_clock; }

Clock* SetCurrentClock(Clock* c) {
  Clock* prev = g_current_clock;
  g_current_clock = c;
  return prev;
}

int CurrentOverlap() { return g_current_overlap; }

int SetCurrentOverlap(int ways) {
  int prev = g_current_overlap;
  g_current_overlap = ways < 1 ? 1 : ways;
  return prev;
}

}  // namespace vt
}  // namespace flatstore
