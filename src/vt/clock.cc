#include "vt/clock.h"

namespace flatstore {
namespace vt {

namespace {
thread_local Clock* g_current_clock = nullptr;
}  // namespace

Clock* CurrentClock() { return g_current_clock; }

Clock* SetCurrentClock(Clock* c) {
  Clock* prev = g_current_clock;
  g_current_clock = c;
  return prev;
}

}  // namespace vt
}  // namespace flatstore
