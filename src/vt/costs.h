// Calibration constants of the virtual-time cost model.
//
// All values are simulated nanoseconds. They are calibrated so that the
// raw-device microbenchmarks (bench_fig01_motivation) land in the ballpark
// of the paper's Figure 1 / Izraelevitz et al.'s Optane DCPMM measurements:
//   * ~90 ns store+clwb latency to ADR;
//   * aggregate random 64 B write throughput saturating around 60 Mops/s
//     across 4 DIMMs (non-scalable write bandwidth);
//   * sequential 256 B writes ~2x random at low thread counts, converging
//     under high concurrency (write-combining buffer thrash);
//   * ~800 ns stall when re-flushing a cacheline that was just flushed.
//
// CPU-side constants deliberately charge *work actually performed* — the
// engines call CostMemcpy(len) for bytes they really copy, kCpuCacheMiss
// for pointer hops they really take — so relative costs between FlatStore
// and the baselines emerge from their real code paths.

#ifndef FLATSTORE_VT_COSTS_H_
#define FLATSTORE_VT_COSTS_H_

#include <cstdint>

namespace flatstore {
namespace vt {

// ---- PM device (see pm/pm_device.h) ----------------------------------

// Number of emulated DIMMs and the address-interleaving granularity.
inline constexpr int kPmDimms = 4;
inline constexpr uint64_t kPmInterleave = 4096;

// Latency from clwb issue until the line is accepted by the DIMM's ADR
// domain (what a following sfence waits for, beyond device queueing).
inline constexpr uint64_t kPmFlushLatency = 90;

// CPU cost of issuing one clwb instruction.
inline constexpr uint64_t kClwbIssueCost = 8;

// CPU cost of an sfence/mfence.
inline constexpr uint64_t kFenceCost = 10;

// Device service time for a random 256 B internal block write (per DIMM).
// 4 DIMMs / 62 ns => ~64 M blocks/s aggregate => ~60+ Mops of 64 B writes.
inline constexpr uint64_t kPmBlockService = 95;

// Service time when the written block immediately follows the previous
// block of an open write-combining stream (sequential locality).
inline constexpr uint64_t kPmSeqBlockService = 30;

// Service time when the flushed line lands in a 256 B block that is still
// open in the write-combining buffer (second..fourth line of a block).
inline constexpr uint64_t kPmCoalescedService = 8;

// Number of open-block entries in each DIMM's write-combining buffer and
// how long an entry stays open. Small on purpose: many concurrent writers
// thrash it, which is what makes sequential ≈ random at high thread counts.
inline constexpr int kPmWcEntries = 6;
inline constexpr uint64_t kPmWcWindow = 600;

// Penalty for re-flushing a cacheline within kPmInPlaceWindow of its last
// flush (paper §2.3 observation 2: ~800 ns).
inline constexpr uint64_t kPmInPlaceDelay = 800;
inline constexpr uint64_t kPmInPlaceWindow = 1000;

// PM read latency for a cacheline that misses the CPU cache (Optane media
// read), charged by engines when they chase pointers into PM.
inline constexpr uint64_t kPmReadLatency = 170;

// ---- NUMA / multi-socket ----------------------------------------------
//
// The paper's testbed is a 2-socket machine: each socket owns its own set
// of kPmDimms DIMMs (and its share of DRAM), and any access whose target
// lives on the *other* socket crosses the inter-socket link (UPI). The
// surcharges below are per-cacheline and land on top of the local cost:
// remote Optane loads measure ~1.7-2x local latency, remote stores pay
// the link plus the remote controller's write path.

// Upper bound on emulated sockets (sizes the device's DIMM array).
inline constexpr int kMaxSockets = 4;

// Extra latency of a cache-miss-class *load* (DRAM or PM) whose home
// socket differs from the executing core's.
inline constexpr uint64_t kRemoteSocketLoadPenalty = 110;

// Extra latency of a flush (clwb) targeting a cacheline owned by another
// socket: the line crosses the link before the remote controller accepts
// it into its ADR domain.
inline constexpr uint64_t kRemoteSocketPersistPenalty = 240;

// Media occupancy of one cacheline read (reads are ~2-3x cheaper than the
// 256 B write block service but share the DIMM bandwidth).
inline constexpr uint64_t kPmReadService = 25;

// ---- CPU --------------------------------------------------------------

// One DRAM cache miss (pointer chase into a cold node).
inline constexpr uint64_t kCpuCacheMiss = 40;

// One cache-hit memory access / slot probe within a fetched node.
inline constexpr uint64_t kCpuSlotProbe = 3;

// One 64-bit hash computation.
inline constexpr uint64_t kCpuHash = 12;

// One CAS / locked RMW on a shared line (uncontended).
inline constexpr uint64_t kCpuCas = 20;

// Cost of copying `len` bytes (fixed overhead + streaming bandwidth).
inline constexpr uint64_t CostMemcpy(uint64_t len) { return 8 + len / 16; }

// ---- Batched reads (MultiGet prefetch pipeline) -----------------------

// CPU cost of issuing one software prefetch: address computation plus the
// prefetch instruction itself; the line arrives asynchronously.
inline constexpr uint64_t kPrefetchIssueCost = 4;

// Demand misses one core can keep in flight when independent lookup
// chains are interleaved (line-fill buffers bound memory-level
// parallelism; ~10 on current x86, kept conservative).
inline constexpr int kMemParallelism = 8;

// Effective stall of one cache-miss-class access when `ways` independent
// prefetch-covered lookup chains are interleaved on the core: the miss
// latency is amortized across the overlapping chains, floored at the
// slot-probe cost of consuming a line that already arrived. ways <= 1
// (serial execution, or an un-prefetched probe) degenerates to the full
// latency, so single-request paths are charged exactly as before.
inline constexpr uint64_t OverlappedMissCost(int ways, uint64_t miss) {
  const int overlap =
      ways < 1 ? 1 : (ways > kMemParallelism ? kMemParallelism : ways);
  const uint64_t amortized = miss / static_cast<uint64_t>(overlap);
  return amortized > kCpuSlotProbe ? amortized : kCpuSlotProbe;
}

// ---- RPC / network (see net/) -----------------------------------------

// One-way network latency of an RDMA write message.
inline constexpr uint64_t kNetOneWay = 900;

// Client-side cost of posting one request (building payload + doorbell).
inline constexpr uint64_t kClientPostCost = 80;

// Server-core cost of polling + parsing one incoming message.
inline constexpr uint64_t kRpcProcessCost = 90;

// Cost of one empty poll sweep over the message buffers.
inline constexpr uint64_t kPollMissCost = 25;

// Posting a response verb via MMIO directly from the agent core.
inline constexpr uint64_t kMmioPostCost = 220;

// Appending a response verb to an already-open doorbell chain (RDMA
// doorbell batching: one MMIO write rings the doorbell for a chain of
// WQEs, so chained verbs pay only the WQE build — the chain head paid
// the MMIO / handoff).
inline constexpr uint64_t kDoorbellChainCost = 25;

// Handing a response verb to the agent core through shared memory
// (paper §4.3: verbs are a few bytes; the agent prefetches them).
inline constexpr uint64_t kDelegateHandoffCost = 60;

// Agent-core cost of forwarding one delegated verb (lower than a remote
// core's MMIO because the agent sits on the NIC's socket).
inline constexpr uint64_t kAgentMmioCost = 40;

// NIC QP-cache model: number of QPs that fit in NIC SRAM, and the extra
// per-message cost once the working set exceeds it (connection-state fetch
// over PCIe). This is what makes all-to-all QPs lose to FlatRPC.
inline constexpr int kNicQpCacheEntries = 96;
inline constexpr uint64_t kQpCacheMissCost = 450;

// ---- Retirement / reclamation (common/epoch.h) ------------------------

// Read-side cost of an epoch-protected log-entry dereference: one plain
// store into a core-local cacheline at pin and one at unpin, plus a
// global-epoch load that stays cache-resident (the cleaner writes it only
// a few times per pass). No RMW, no shared-line ping-pong.
inline constexpr uint64_t kEpochPinCost = 2 * kCpuSlotProbe;

// What the retired design cost per dereference and what the epoch design
// replaces: acquiring + releasing a reader-writer lock is two locked RMWs
// on a cacheline shared by every core of the group, each a cross-core
// transfer under contention. Kept for the before/after comparison in
// bench_retire_scalability and the Fig. 10/12 discussion.
inline constexpr uint64_t kRetireSharedLockCost = 2 * kCpuCas;

// ---- Batching ---------------------------------------------------------

// Leader's cost to scan one sibling core's request pool while stealing
// (one cacheline read of the pool header).
inline constexpr uint64_t kStealScanCost = 10;

// Cost of enqueueing/claiming one entry in a request pool (pointer grab).
inline constexpr uint64_t kPoolOpCost = 4;

}  // namespace vt
}  // namespace flatstore

#endif  // FLATSTORE_VT_COSTS_H_
