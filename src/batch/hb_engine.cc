#include "batch/hb_engine.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "vt/clock.h"
#include "vt/costs.h"

namespace flatstore {
namespace batch {

const char* BatchModeName(BatchMode mode) {
  switch (mode) {
    case BatchMode::kNone:
      return "none";
    case BatchMode::kVertical:
      return "vertical";
    case BatchMode::kNaiveHB:
      return "naive-hb";
    case BatchMode::kPipelinedHB:
      return "pipelined-hb";
  }
  return "?";
}

HbEngine::HbEngine(std::vector<log::OpLog*> logs, int group_size,
                   BatchMode mode)
    : logs_(std::move(logs)), group_size_(group_size), mode_(mode) {
  FLATSTORE_CHECK(!logs_.empty());
  FLATSTORE_CHECK_GE(group_size_, 1);
  pools_ = std::vector<CorePool>(logs_.size());
  const size_t ngroups =
      (logs_.size() + static_cast<size_t>(group_size_) - 1) /
      static_cast<size_t>(group_size_);
  for (size_t g = 0; g < ngroups; g++) {
    groups_.push_back(std::make_unique<Group>());
  }
}

FS_HOT bool HbEngine::Stage(int core, const uint8_t* entry, uint32_t len,
                            uint64_t* handle) {
  FLATSTORE_DCHECK(len <= log::kMaxEntrySize);
  CorePool& pool = pools_[core];
  // relaxed: head has a single writer — this core's serving thread.
  const uint64_t h = pool.head.load(std::memory_order_relaxed);
  Slot& slot = pool.slots[h % kPoolSlots];
  if (slot.state.load(std::memory_order_acquire) != kFree) return false;
  std::memcpy(slot.buf, entry, len);
  slot.len = len;
  slot.fuse = 1;  // slot reuse: clear a stale fused-group length
  slot.stage_time = vt::Now();
  slot.state.store(kStaged, std::memory_order_release);
  pool.head.store(h + 1, std::memory_order_release);
  vt::Charge(vt::kPoolOpCost);
  *handle = h;
  return true;
}

FS_HOT bool HbEngine::StageBatch(int core, const log::OpLog::EntryRef* entries,
                                 size_t n, uint64_t* handles) {
  FLATSTORE_DCHECK(n >= 1 && n <= kMaxBatch);
  CorePool& pool = pools_[core];
  // relaxed: head has a single writer — this core's serving thread.
  const uint64_t h = pool.head.load(std::memory_order_relaxed);
  // All-or-nothing admission: a partially staged group would lose the
  // single-reservation / single-fence-pair property.
  for (size_t i = 0; i < n; i++) {
    if (pool.slots[(h + i) % kPoolSlots].state.load(
            std::memory_order_acquire) != kFree) {
      return false;
    }
  }
  const uint64_t now = vt::Now();
  for (size_t i = 0; i < n; i++) {
    Slot& slot = pool.slots[(h + i) % kPoolSlots];
    FLATSTORE_DCHECK(entries[i].len <= log::kMaxEntrySize);
    std::memcpy(slot.buf, entries[i].data, entries[i].len);
    slot.len = entries[i].len;
    // One stage instant for the whole group: the collector's arrival
    // cutoff can never cut a fused group in half.
    slot.stage_time = now;
    slot.fuse = i == 0 ? static_cast<uint32_t>(n) : 1;
    slot.state.store(kStaged, std::memory_order_release);
    handles[i] = h + i;
    vt::Charge(vt::kPoolOpCost);
  }
  pool.head.store(h + n, std::memory_order_release);
  // relaxed: stat counters, ordering irrelevant.
  fused_groups_.fetch_add(1, std::memory_order_relaxed);
  fused_entries_.fetch_add(n, std::memory_order_relaxed);
  return true;
}

FS_HOT void HbEngine::Collect(int core, uint64_t now,
                              log::OpLog::EntryRef* refs, Slot** claims,
                              size_t* n) {
  CorePool& pool = pools_[core];
  const uint64_t head = pool.head.load(std::memory_order_acquire);
  // relaxed: collected is written only under the group lock (HB modes) or
  // by the owning core (vertical/none); this caller is that writer, so it
  // reads its own — or its lock predecessor's — store.
  uint64_t collected = pool.collected.load(std::memory_order_relaxed);
  if (collected == head) return;  // idle scan: free (event-driven sim)
  vt::Charge(vt::kStealScanCost);
  while (collected < head && *n < kMaxBatch) {
    Slot& slot = pool.slots[collected % kPoolSlots];
    // relaxed: debug-only sanity check; the acquire on head above already
    // ordered the slot contents.
    FLATSTORE_DCHECK(slot.state.load(std::memory_order_relaxed) == kStaged);
    if (slot.stage_time > now) break;  // staged in this core's future
    // Never split a fused group (StageBatch) across leader batches: the
    // whole group must land in one AppendBatch or its single-fence-pair
    // crash contract is void. fuse <= kMaxBatch, so an empty batch always
    // has room and this cannot stall.
    const uint32_t fuse = slot.fuse;
    if (static_cast<size_t>(fuse) > kMaxBatch - *n) break;
    for (uint32_t i = 0; i < fuse; i++) {
      Slot& s = pool.slots[collected % kPoolSlots];
      refs[*n] = {s.buf, s.len};
      claims[*n] = &s;
      (*n)++;
      collected++;
      vt::Charge(vt::kPoolOpCost);
    }
  }
  // relaxed: see the load above — the next reader is the next leader
  // (ordered by the group lock) or the owner itself; lock-free readers
  // (PendingCount) use it only as an election heuristic.
  pool.collected.store(collected, std::memory_order_relaxed);
}

FS_HOT uint64_t HbEngine::EarliestStaged(int core) const {
  const CorePool& pool = pools_[core];
  const uint64_t head = pool.head.load(std::memory_order_acquire);
  // relaxed: stale reads only delay a steal by one scan; the group lock
  // orders the authoritative read in Collect.
  const uint64_t collected = pool.collected.load(std::memory_order_relaxed);
  if (collected == head) return UINT64_MAX;
  return pool.slots[collected % kPoolSlots].stage_time;
}

size_t HbEngine::Commit(log::OpLog* log, const log::OpLog::EntryRef* refs,
                        Slot* const* claims, size_t n, uint64_t* offsets) {
  if (n == 0) return 0;
  bool ok = log->AppendBatch(refs, n, offsets);
  FLATSTORE_CHECK(ok) << "PM exhausted while appending a batch";
  const uint64_t done = vt::Now();
  for (size_t i = 0; i < n; i++) {
    claims[i]->entry_off = offsets[i];
    claims[i]->done_time = done;
    claims[i]->state.store(kDone, std::memory_order_release);
  }
  // relaxed: stat counters, ordering irrelevant.
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_entries_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

FS_HOT size_t HbEngine::TryPersist(int core) {
  // Leader scratch lives in the core's own pool: only the owning serving
  // thread runs TryPersist for `core`, and the hot loop stays heap-free.
  CorePool& mine = pools_[core];
  log::OpLog::EntryRef* refs = mine.refs;
  Slot** claims = mine.claims;
  size_t nref = 0;

  vt::Clock* clock = vt::CurrentClock();
  if (mode_ == BatchMode::kNone) {
    // No batching at all (the ablation "Base"): each staged entry is
    // appended and fenced on its own, at or after its staging instant.
    size_t n = 0;
    while (true) {
      const uint64_t t = EarliestStaged(core);
      if (t == UINT64_MAX) break;
      if (clock != nullptr) clock->AdvanceTo(t);
      nref = 0;
      Collect(core, t, refs, claims, &nref);
      for (size_t i = 0; i < nref; i++) {
        n += Commit(logs_[core], &refs[i], &claims[i], 1, &mine.offsets[i]);
      }
    }
    return n;
  }
  if (mode_ == BatchMode::kVertical) {
    // Self-batching only — Fig. 4(b): the core waits for its own
    // requests; the batch covers what arrived by then.
    const uint64_t t = EarliestStaged(core);
    if (t == UINT64_MAX) return 0;
    if (clock != nullptr) clock->AdvanceTo(t);
    Collect(core, vt::Now(), refs, claims, &nref);
    return Commit(logs_[core], refs, claims, nref, mine.offsets);
  }

  Group& group = *groups_[core / group_size_];
  const int first_core = (core / group_size_) * group_size_;
  const int last =
      std::min(first_core + group_size_, static_cast<int>(logs_.size()));
  {
    // Idle turns are free: a spinning host thread must not advance
    // simulated time or the group's collection resource.
    // Leadership is handed round-robin to the next core *with staged
    // work* after the previous leader — fully deterministic, so neither
    // host-thread scheduling nor dispatch order biases which core's
    // virtual clock absorbs the batch persists.
    const int gsize = last - first_core;
    // relaxed: leadership preference is a heuristic; any stale value
    // still yields exactly one leader via the try_lock below.
    const int designated =
        group.next_leader.load(std::memory_order_relaxed);
    int chosen = -1;
    for (int i = 0; i < gsize; i++) {
      int cand = first_core + (designated + i) % gsize;
      if (PendingCount(cand) > 0) {
        chosen = cand;
        break;
      }
    }
    if (chosen != core) return 0;
  }
  if (!group.lock.try_lock()) {
    // Follower: keep processing new requests (pipelining); completion
    // arrives through the slot.
    return 0;
  }
  vt::Charge(vt::kCpuCas);

  // The leader can only steal entries that exist by its clock (stage_time
  // <= now): batch composition must reflect simulated arrival order.
  // A leader with nothing collectible at its own clock — an idle core —
  // advances to the earliest staged entry and takes it: "those non-busy
  // cores have higher opportunity to become the leader, and help the busy
  // cores flush the log entries" (paper §5.1). Busy leaders never jump to
  // other cores' later stage times. (Collection mutual exclusion is not
  // transferred between per-core clocks: clocks drift apart by more than
  // a collection takes, and chaining through a shared busy timestamp
  // would ratchet every core to the maximum clock — false serialization.)
  for (int c = first_core; c < last && nref < kMaxBatch; c++) {
    Collect(c, vt::Now(), refs, claims, &nref);
  }
  if (nref == 0 && clock != nullptr) {
    uint64_t earliest = UINT64_MAX;
    for (int c = first_core; c < last; c++) {
      earliest = std::min(earliest, EarliestStaged(c));
    }
    if (earliest != UINT64_MAX) {
      clock->AdvanceTo(earliest);
      for (int c = first_core; c < last && nref < kMaxBatch; c++) {
        Collect(c, vt::Now(), refs, claims, &nref);
      }
    }
  }
  if (nref == 0) {
    // Nothing collectible at this leader's clock.
    group.lock.unlock();
    return 0;
  }
  // Pass the leadership baton.
  // relaxed: written under the group lock; readers treat it as a hint.
  group.next_leader.store((core - first_core + 1) % (last - first_core),
                          std::memory_order_relaxed);
  // relaxed: diagnostics only (Wait's live-lock report); no ordering.
  group.last_leader.store(core, std::memory_order_relaxed);
  group.inflight_batch.store(static_cast<uint32_t>(nref),
                             std::memory_order_relaxed);

  if (mode_ == BatchMode::kPipelinedHB) {
    // Release the lock *before* persisting: the log-persist cost moves
    // out of the critical section and adjacent batches pipeline.
    group.lock.unlock();
    size_t n = Commit(logs_[core], refs, claims, nref, mine.offsets);
    // relaxed: diagnostics only — the batch is no longer in flight.
    group.inflight_batch.store(0, std::memory_order_relaxed);
    return n;
  }

  // Naive HB: the lock covers the persist (Fig. 4(c)).
  size_t n = Commit(logs_[core], refs, claims, nref, mine.offsets);
  // relaxed: diagnostics only — the batch is no longer in flight.
  group.inflight_batch.store(0, std::memory_order_relaxed);
  group.lock.unlock();
  return n;
}

FS_HOT bool HbEngine::IsDone(int core, uint64_t handle, uint64_t* entry_off,
                             uint64_t* done_time) const {
  const Slot& slot = pools_[core].slots[handle % kPoolSlots];
  if (slot.state.load(std::memory_order_acquire) != kDone) return false;
  *entry_off = slot.entry_off;
  *done_time = slot.done_time;
  return true;
}

FS_HOT void HbEngine::Release(int core, uint64_t handle) {
  Slot& slot = pools_[core].slots[handle % kPoolSlots];
  // relaxed: debug-only owner-side check; the caller already observed
  // kDone through IsDone's acquire.
  FLATSTORE_DCHECK(slot.state.load(std::memory_order_relaxed) == kDone);
  slot.state.store(kFree, std::memory_order_release);
}

std::pair<uint64_t, uint64_t> HbEngine::Wait(int core, uint64_t handle) {
  uint64_t off, done;
  uint64_t spins = 0;
  while (!IsDone(core, handle, &off, &done)) {
    if (TryPersist(core) > 0) {
      spins = 0;  // progress — someone's entries persisted
      continue;
    }
    if (++spins >= kWaitSpinLimit) {
      const Slot& slot = pools_[core].slots[handle % kPoolSlots];
      const Group& group = *groups_[core / group_size_];
      FLATSTORE_CHECK(false)
          << "HbEngine::Wait made no progress for " << kWaitSpinLimit
          << " spins (live-lock?): core=" << core << " handle=" << handle
          << " mode=" << BatchModeName(mode_)
          << " pending=" << PendingCount(core)
          << " slot_state=" << slot.state.load(std::memory_order_acquire)
          << " slot_len=" << slot.len << " slot_fuse=" << slot.fuse
          // relaxed: forensic snapshot; values may lag by one batch.
          << " group_leader="
          << group.last_leader.load(std::memory_order_relaxed)
          << " leader_inflight_fused="
          << group.inflight_batch.load(std::memory_order_relaxed);
    }
    // A follower's completion is published by another thread's leader
    // turn; give that thread the CPU now and then.
    if ((spins & 0x3FF) == 0) std::this_thread::yield();
  }
  if (vt::Clock* clock = vt::CurrentClock()) clock->AdvanceTo(done);
  return {off, done};
}

FS_HOT size_t HbEngine::PendingCount(int core) const {
  const CorePool& pool = pools_[core];
  // relaxed: election heuristic — a stale count only shifts which core
  // volunteers first; correctness comes from the group lock.
  return pool.head.load(std::memory_order_relaxed) -
         pool.collected.load(std::memory_order_relaxed);
}

}  // namespace batch
}  // namespace flatstore
