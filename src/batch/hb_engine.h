// Horizontal batching (paper §3.3).
//
// The g-persist phase of a Put is decoupled from the serving core: each
// core *stages* its encoded log entries in a per-core request pool; one
// core — whichever wins the group lock — becomes the leader, steals every
// staged entry in its group, appends them to its own OpLog as one batch,
// and publishes per-entry completion. Four strategies are selectable for
// the ablation studies (Fig. 4 / Fig. 11 / Fig. 12):
//
//  * kNone        — each request persists alone (the "Base" version);
//  * kVertical    — a core batches only the requests it received itself;
//  * kNaiveHB     — leader steals, but holds the group lock across the
//                   whole persist (Fig. 4(c));
//  * kPipelinedHB — leader releases the lock right after collecting, so
//                   adjacent batches overlap (Fig. 4(d)); followers keep
//                   polling new requests instead of blocking.
//
// Virtual time: host-level locking only protects memory; the *simulated*
// cost of the protocol is modelled by the per-core scan/claim charges and
// the leader's PM charges inside OpLog::AppendBatch. A follower learns
// its entry's completion timestamp from the slot and advances its own
// clock when it observes it.

#ifndef FLATSTORE_BATCH_HB_ENGINE_H_
#define FLATSTORE_BATCH_HB_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spin_lock.h"
#include "common/thread_annotations.h"
#include "log/log_entry.h"
#include "log/oplog.h"

namespace flatstore {
namespace batch {

// Batching strategy (see file comment).
enum class BatchMode { kNone, kVertical, kNaiveHB, kPipelinedHB };

const char* BatchModeName(BatchMode mode);

// The batching engine for one store instance.
class HbEngine {
 public:
  // Staged entries per core. Public: the engine's request pool bounds the
  // store's per-core in-flight population, so FlatStore sizes its pending
  // ring and in-flight key table from it.
  static constexpr size_t kPoolSlots = 512;
  // Upper bound on entries merged into one batch. Bounds the tail latency
  // a stolen entry can accrue waiting for its batch to persist, and keeps
  // several leaders' persists in flight concurrently under load.
  static constexpr size_t kMaxBatch = 64;

  // `logs[c]` is core c's OpLog; `group_size` cores share one group lock
  // (the paper groups by socket).
  HbEngine(std::vector<log::OpLog*> logs, int group_size, BatchMode mode);

  HbEngine(const HbEngine&) = delete;
  HbEngine& operator=(const HbEngine&) = delete;

  // Stages an encoded log entry for `core`. Returns false when the core's
  // pool is full (caller must TryPersist + drain completions first).
  // On success `*handle` identifies the staged request.
  bool Stage(int core, const uint8_t* entry, uint32_t len, uint64_t* handle);

  // Stages `n` encoded entries (n <= kMaxBatch) as ONE fused group in
  // consecutive slots of `core`'s pool. The collector never splits a
  // fused group across leader batches, so the whole group flows through a
  // single OpLog::AppendBatch — one reservation, one contiguous record
  // chain, one persist sweep, one fence pair — and a torn crash can only
  // surface an entry-prefix of the group, never an interleaving.
  // All-or-nothing: returns false (staging nothing) when fewer than `n`
  // slots are free. `handles[i]` receives the i-th entry's handle.
  bool StageBatch(int core, const log::OpLog::EntryRef* entries, size_t n,
                  uint64_t* handles);

  // Runs one g-persist attempt for `core`: leader work in HB modes,
  // self-batching in kVertical/kNone. Returns the number of entries this
  // call persisted (0 when the core lost the leader election).
  size_t TryPersist(int core);

  // Non-blocking completion check for a staged handle. On completion
  // fills the entry's log offset and the simulated completion time.
  bool IsDone(int core, uint64_t handle, uint64_t* entry_off,
              uint64_t* done_time) const;

  // Releases a completed slot for reuse. Handles must be released in
  // FIFO order per core (the engine processes completions in order).
  void Release(int core, uint64_t handle);

  // Blocking convenience for synchronous callers (tests, quickstart):
  // persists + spins until `handle` completes. Returns {off, done_time}.
  std::pair<uint64_t, uint64_t> Wait(int core, uint64_t handle);

  // Number of staged-but-unpersisted entries for `core`.
  size_t PendingCount(int core) const;

  BatchMode mode() const { return mode_; }
  int group_size() const { return group_size_; }
  int num_cores() const { return static_cast<int>(logs_.size()); }

  // Aggregate batch-size statistics (Fig. 11/12 analysis).
  uint64_t batches() const {
    // relaxed: stat counter read after the run quiesces.
    return batches_.load(std::memory_order_relaxed);
  }
  uint64_t batched_entries() const {
    // relaxed: stat counter read after the run quiesces.
    return batched_entries_.load(std::memory_order_relaxed);
  }
  // Fused groups staged through StageBatch and the entries they carried
  // (tests assert client batches really stay whole end to end).
  uint64_t fused_groups() const {
    // relaxed: stat counter read after the run quiesces.
    return fused_groups_.load(std::memory_order_relaxed);
  }
  uint64_t fused_entries() const {
    // relaxed: stat counter read after the run quiesces.
    return fused_entries_.load(std::memory_order_relaxed);
  }

 private:
  enum : uint32_t { kFree = 0, kStaged = 1, kDone = 2 };

  // Spins of Wait()'s persist-poll loop without any progress before the
  // engine declares a live-lock and aborts with diagnostics instead of
  // hanging the caller forever.
  static constexpr uint64_t kWaitSpinLimit = uint64_t{1} << 22;

  struct Slot {
    uint8_t buf[log::kMaxEntrySize];
    uint32_t len = 0;
    // Entries in the fused group starting at this slot (1 = unfused;
    // only meaningful on a group's first slot). The collector refuses to
    // take a group it cannot take whole.
    uint32_t fuse = 1;
    uint64_t stage_time = 0;  // owner's simulated clock at Stage()
    uint64_t entry_off = 0;
    uint64_t done_time = 0;
    std::atomic<uint32_t> state{kFree};
  };

  struct alignas(64) CorePool {
    std::unique_ptr<Slot[]> slots{new Slot[kPoolSlots]};
    std::atomic<uint64_t> head{0};    // owner: next stage position
    // Next steal position. Written only by the current leader (group lock
    // held); read lock-free by every core's leader-election scan
    // (PendingCount), so it must be atomic — relaxed suffices, the value
    // is only an election heuristic there.
    std::atomic<uint64_t> collected{0};
    // Leader-side batch scratch: fixed arrays keep the g-persist hot loop
    // off the heap (only the owning serving thread runs TryPersist for
    // this core, so no synchronization is needed).
    log::OpLog::EntryRef refs[kMaxBatch];
    Slot* claims[kMaxBatch];
    uint64_t offsets[kMaxBatch];
  };

  struct alignas(64) Group {
    SpinLock lock;
    // Round-robin leadership preference (relative core within the group):
    // host-thread scheduling must not decide who leads, or one core's
    // virtual clock would absorb every batch's persist cost. A core
    // defers to the designated leader whenever that leader has staged
    // work of its own (the paper's rotation emerges from arrival timing
    // on real hardware; here it is made explicit and deterministic).
    std::atomic<int> next_leader{0};
    // Live-lock forensics for Wait(): which core last led this group and
    // how many entries its in-flight batch fuses (0 once committed). A
    // leader stalled mid-fused-persist is visible here instead of being
    // opaque to the aborting waiter.
    std::atomic<int> last_leader{-1};
    std::atomic<uint32_t> inflight_batch{0};
  };

  // Collects the entries of `core` staged at simulated time <= `now`
  // into the leader's scratch arrays (capacity kMaxBatch; `*n` is the
  // fill count, appended to). Batch composition must depend on
  // *simulated* arrival order, not on host-thread scheduling, or results
  // would vary run to run.
  void Collect(int core, uint64_t now, log::OpLog::EntryRef* refs,
               Slot** claims, size_t* n);

  // Earliest stage_time among `core`'s uncollected entries (UINT64_MAX
  // when none).
  uint64_t EarliestStaged(int core) const;

  // Appends + publishes a collected batch through `log`. `offsets` is
  // leader scratch of at least `n` slots.
  size_t Commit(log::OpLog* log, const log::OpLog::EntryRef* refs,
                Slot* const* claims, size_t n, uint64_t* offsets);

  std::vector<log::OpLog*> logs_;
  int group_size_;
  BatchMode mode_;
  std::vector<CorePool> pools_;
  std::vector<std::unique_ptr<Group>> groups_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_entries_{0};
  std::atomic<uint64_t> fused_groups_{0};
  std::atomic<uint64_t> fused_entries_{0};
};

}  // namespace batch
}  // namespace flatstore

#endif  // FLATSTORE_BATCH_HB_ENGINE_H_
